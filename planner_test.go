package xmlsearch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/testutil"
)

func mustIndex(t testing.TB, xml string) *Index {
	t.Helper()
	idx, err := Open(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

const plannerTestDoc = `<lib>
  <book><title>sensor network design</title><year>2010</year></book>
  <book><title>keyword query ranking</title><note>network</note></book>
  <book><title>xml keyword search</title></book>
</lib>`

// TestCrossEngineDifferential randomizes small documents and checks that
// every capable engine — and the cost-based planner, whichever engine it
// picks — agrees on every query, under both semantics. Complete result
// sets must match exactly; top-K runs are compared on score vectors,
// because engines may legitimately disagree on membership at a k-boundary
// score tie.
func TestCrossEngineDifferential(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		params := testutil.SmallParams()
		idx, err := FromDocument(testutil.RandomDoc(rng, params))
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 6; qi++ {
			kws := 1 + rng.Intn(3)
			query := strings.Join(testutil.RandomQuery(rng, params.Vocab, kws), " ")
			if len(Keywords(query)) == 0 {
				continue
			}
			for _, sem := range []Semantics{ELCA, SLCA} {
				name := fmt.Sprintf("seed=%d %q %v", seed, query, sem)
				ref, err := idx.Search(query, SearchOptions{Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range []Algorithm{AlgoStack, AlgoIndexLookup, AlgoAuto} {
					rs, err := idx.Search(query, SearchOptions{Semantics: sem, Algorithm: algo})
					if err != nil {
						t.Fatalf("%s algo %v: %v", name, algo, err)
					}
					assertSameResults(t, algo.String(), name, ref, rs)
				}
				for _, k := range []int{1, 3, 25} {
					want := k
					if len(ref) < want {
						want = len(ref)
					}
					for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid, AlgoAuto} {
						top, err := idx.TopK(query, k, SearchOptions{Semantics: sem, Algorithm: algo})
						if err != nil {
							t.Fatalf("%s algo %v k=%d: %v", name, algo, k, err)
						}
						if len(top) != want {
							t.Fatalf("%s algo %v: top-%d returned %d of %d", name, algo, k, len(top), want)
						}
						for i := range top {
							if math.Abs(top[i].Score-ref[i].Score) > 1e-6*(1+math.Abs(ref[i].Score)) {
								t.Fatalf("%s algo %v rank %d: score %v, want %v", name, algo, i, top[i].Score, ref[i].Score)
							}
						}
					}
				}
			}
		}
	}
}

// TestAutoNeverErrors: AlgoAuto must serve every query an explicit engine
// can serve — the planner has no failure mode of its own.
func TestAutoNeverErrors(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	opt := SearchOptions{Algorithm: AlgoAuto}
	for _, q := range []string{"sensor", "network keyword", "xml keyword search ranking", "zzz-absent"} {
		if _, err := idx.Search(q, opt); err != nil {
			t.Fatalf("Search(%q): %v", q, err)
		}
		if _, err := idx.TopK(q, 3, opt); err != nil {
			t.Fatalf("TopK(%q): %v", q, err)
		}
	}
	if _, err := idx.Search("", opt); err != ErrNoKeywords {
		t.Fatalf("empty query: %v, want ErrNoKeywords", err)
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{
		AlgoJoin: "join", AlgoStack: "stack", AlgoIndexLookup: "ixlookup",
		AlgoRDIL: "rdil", AlgoHybrid: "hybrid", AlgoAuto: "auto", Algorithm(42): "algorithm(42)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("Algorithm(%d).String() = %q, want %q", int(a), got, want)
		}
	}
	// The Stringer names engines in errors: a top-K-only engine asked for
	// a complete evaluation, and an unknown algorithm.
	idx := mustIndex(t, plannerTestDoc)
	if _, err := idx.Search("sensor", SearchOptions{Algorithm: AlgoRDIL}); err == nil ||
		!strings.Contains(err.Error(), "algorithm rdil is top-K only") {
		t.Fatalf("RDIL complete error = %v", err)
	}
	if _, err := idx.Search("sensor", SearchOptions{Algorithm: Algorithm(42)}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm algorithm(42)") {
		t.Fatalf("unknown algorithm error = %v", err)
	}
}

func TestPlanCacheHitOnRepeat(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	opt := SearchOptions{Algorithm: AlgoAuto}
	if _, err := idx.TopK("sensor network", 5, opt); err != nil {
		t.Fatal(err)
	}
	p := idx.Stats().Planner
	if p.CacheMisses != 1 || p.CacheHits != 0 {
		t.Fatalf("after first query: hits=%d misses=%d", p.CacheHits, p.CacheMisses)
	}
	if p.AutoPlans != 1 {
		t.Fatalf("auto plans = %d, want 1", p.AutoPlans)
	}
	if _, err := idx.TopK("sensor network", 5, opt); err != nil {
		t.Fatal(err)
	}
	// k=7 buckets to 8, like k=5: same cached plan.
	if _, err := idx.TopK("sensor network", 7, opt); err != nil {
		t.Fatal(err)
	}
	p = idx.Stats().Planner
	if p.CacheHits != 2 || p.CacheMisses != 1 {
		t.Fatalf("after repeats: hits=%d misses=%d", p.CacheHits, p.CacheMisses)
	}
	// A different k-bucket, semantics, or keyword set is a new plan.
	if _, err := idx.TopK("sensor network", 100, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search("sensor network", SearchOptions{Algorithm: AlgoAuto, Semantics: SLCA}); err != nil {
		t.Fatal(err)
	}
	p = idx.Stats().Planner
	if p.CacheMisses != 3 {
		t.Fatalf("distinct shapes: misses=%d, want 3", p.CacheMisses)
	}
}

func TestPlanCacheMissAfterMutation(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	opt := SearchOptions{Algorithm: AlgoAuto}
	run := func() {
		t.Helper()
		if _, err := idx.TopK("sensor network", 5, opt); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	before := idx.Stats().Planner
	if before.CacheHits != 1 {
		t.Fatalf("warm-up hits = %d", before.CacheHits)
	}
	if _, err := idx.InsertElement("1.1", 0, "note", "sensor"); err != nil {
		t.Fatal(err)
	}
	run()
	after := idx.Stats().Planner
	if after.CacheHits != before.CacheHits {
		t.Fatalf("post-mutation query hit a stale plan (hits %d -> %d)", before.CacheHits, after.CacheHits)
	}
	if after.CacheMisses != before.CacheMisses+1 {
		t.Fatalf("post-mutation misses = %d, want %d", after.CacheMisses, before.CacheMisses+1)
	}
	if after.CacheInvalidations == 0 {
		t.Fatal("publish did not invalidate cached plans")
	}
	// The rebuilt plan reflects the new generation.
	p, err := idx.Plan("sensor network", 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Generation != 2 {
		t.Fatalf("plan generation = %d, want 2", p.Generation)
	}
}

func TestPlanCacheBoundedUnderChurn(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	idx.SetPlanCacheCapacity(4)
	opt := SearchOptions{Algorithm: AlgoAuto}
	words := []string{"sensor", "network", "keyword", "query", "ranking", "xml", "search", "design"}
	for i := 0; i < 40; i++ {
		q := words[i%len(words)] + " " + words[(i/2+3)%len(words)]
		if _, err := idx.TopK(q, 1+i%9, opt); err != nil {
			t.Fatal(err)
		}
	}
	s := idx.Stats()
	if s.Gauges.PlanCacheEntries > 4 {
		t.Fatalf("plan cache holds %d entries over capacity 4", s.Gauges.PlanCacheEntries)
	}
	if s.Planner.CacheEvictions == 0 {
		t.Fatal("churn past capacity recorded no evictions")
	}
}

// TestPlanCacheConcurrentStress hammers prepared and ad-hoc AlgoAuto
// queries concurrently with mutations; run under -race it checks the
// planner, cache, and generation plumbing for data races, and that no
// interleaving produces a query error.
func TestPlanCacheConcurrentStress(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	idx.SetPlanCacheCapacity(8)
	opt := SearchOptions{Algorithm: AlgoAuto}
	pq, err := idx.Prepare("sensor network", opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			words := []string{"sensor", "network", "keyword", "xml", "ranking"}
			for i := 0; i < 120; i++ {
				switch i % 3 {
				case 0:
					if _, err := pq.TopK(ctx, 3); err != nil {
						errc <- err
						return
					}
				case 1:
					q := words[(g+i)%len(words)] + " " + words[i%len(words)]
					if _, err := idx.TopK(q, 5, opt); err != nil {
						errc <- err
						return
					}
				default:
					if _, err := idx.Search(words[i%len(words)], opt); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			d, err := idx.InsertElement("1.1", 0, "note", "sensor keyword")
			if err != nil {
				errc <- err
				return
			}
			if err := idx.RemoveElement(d); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestPrepare(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	if _, err := idx.Prepare("", SearchOptions{}); err != ErrNoKeywords {
		t.Fatalf("Prepare(empty) = %v, want ErrNoKeywords", err)
	}
	if _, err := idx.Prepare("sensor", SearchOptions{Algorithm: Algorithm(42)}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("Prepare(unknown algo) = %v", err)
	}
	// A top-K-only algorithm prepares fine and fails only on Search.
	pq, err := idx.Prepare("sensor network", SearchOptions{Algorithm: AlgoRDIL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Search(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "top-K only") {
		t.Fatalf("prepared RDIL Search = %v", err)
	}
	if _, err := pq.TopK(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	// Prepared executions agree with ad-hoc ones across every entry point.
	opt := SearchOptions{Algorithm: AlgoAuto}
	pq, err = idx.Prepare("sensor network", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pq.Query(), "sensor network"; got != want {
		t.Fatalf("Query() = %q", got)
	}
	if kws := pq.Keywords(); len(kws) != 2 {
		t.Fatalf("Keywords() = %v", kws)
	}
	adhoc, err := idx.Search("sensor network", opt)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := pq.Search(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "prepared", "sensor network", adhoc, prepared)

	var streamed []Result
	if err := pq.TopKStream(context.Background(), 2, func(r Result) bool {
		streamed = append(streamed, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	top, err := pq.TopK(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "prepared-stream", "sensor network", top, streamed)

	// A prepared query observes mutations: it pins the snapshot per
	// execution, not at Prepare time.
	before := len(prepared)
	if _, err := idx.InsertElement("1", 0, "book", "sensor network sensor network"); err != nil {
		t.Fatal(err)
	}
	afterRs, err := pq.Search(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(afterRs) <= before {
		t.Fatalf("prepared query is pinned to a stale snapshot: %d results, had %d", len(afterRs), before)
	}
}

func TestQueryPlanShape(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	// Explicit: trivial plan, no costs, not auto.
	p, err := idx.Plan("sensor network", 0, SearchOptions{Algorithm: AlgoStack})
	if err != nil {
		t.Fatal(err)
	}
	if p.Auto || p.Engine != "stack" || len(p.Costs) != 0 {
		t.Fatalf("explicit plan = %+v", p)
	}
	if !strings.Contains(p.Reason, "explicitly selected") {
		t.Fatalf("explicit reason = %q", p.Reason)
	}
	if len(p.Lists) != 2 || p.Lists[0].Rows == 0 {
		t.Fatalf("plan lists = %+v", p.Lists)
	}

	// Auto: costed candidates, cache-hit flag flips on the second call.
	opt := SearchOptions{Algorithm: AlgoAuto}
	p, err = idx.Plan("sensor network", 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Auto || len(p.Costs) < 2 || p.CacheHit {
		t.Fatalf("first auto plan = %+v", p)
	}
	found := false
	for _, c := range p.Costs {
		if c.Engine == p.Engine {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen engine %q missing from costs %+v", p.Engine, p.Costs)
	}
	p, err = idx.Plan("sensor network", 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CacheHit {
		t.Fatal("second auto plan did not hit the cache")
	}
	for _, want := range []string{"plan: engine=", "reason:", "lists:", "costs:"} {
		if !strings.Contains(p.String(), want) {
			t.Fatalf("plan rendering %q missing %q", p.String(), want)
		}
	}

	// Explanation carries the plan.
	ex, err := idx.Explain("sensor network", 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan == nil || !ex.Plan.Auto {
		t.Fatalf("explanation plan = %+v", ex.Plan)
	}
}

// TestExplicitAlgoSkipsPlanCache: only AlgoAuto touches the plan cache;
// the five explicit algorithms stay on the lock-free fast path.
func TestExplicitAlgoSkipsPlanCache(t *testing.T) {
	idx := mustIndex(t, plannerTestDoc)
	for _, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup} {
		if _, err := idx.Search("sensor network", SearchOptions{Algorithm: algo}); err != nil {
			t.Fatal(err)
		}
	}
	for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid} {
		if _, err := idx.TopK("sensor network", 3, SearchOptions{Algorithm: algo}); err != nil {
			t.Fatal(err)
		}
	}
	p := idx.Stats().Planner
	if p.CacheHits != 0 || p.CacheMisses != 0 {
		t.Fatalf("explicit algorithms touched the plan cache: hits=%d misses=%d", p.CacheHits, p.CacheMisses)
	}
	if p.AutoPlans != 0 {
		t.Fatalf("explicit algorithms built auto plans: %d", p.AutoPlans)
	}
}
