package xmlsearch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/exec"
)

// FuzzLoadMeta drives the index.meta parser with mutations of a real saved
// numbering. The parser must never panic, must bound the declared node
// count before allocating, and anything it accepts must be a complete,
// nonzero numbering.
func FuzzLoadMeta(f *testing.F) {
	idx, err := Open(strings.NewReader(
		`<lib><book><title>sensor network</title></book><book><title>query ranking</title></book></lib>`))
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	if err := idx.Save(dir); err != nil {
		f.Fatal(err)
	}
	gen, v2, err := colstore.CurrentGen(dir)
	if err != nil || !v2 {
		f.Fatalf("no commit point: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, genFileName(fileMeta, gen, true)))
	if err != nil {
		f.Fatal(err)
	}
	payload, err := colstore.StripFooter(raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add(raw) // footer attached: trailing bytes, must be rejected
	f.Add(append([]byte(indexMetaMagic), payload[len(indexMetaMagicV2):]...))
	f.Add([]byte(indexMetaMagicV2))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, jds, err := parseIndexMeta(data)
		if err != nil {
			return
		}
		for i, v := range jds {
			if v == 0 {
				t.Fatalf("accepted numbering with zero at node %d", i)
			}
		}
	})
}

// FuzzPlan drives the cost-based planner with arbitrary query strings and
// k values. Planning must never panic, and every plan it produces must
// name a registered engine capable of the requested mode; queries the
// planner accepts must then execute under AlgoAuto without error.
func FuzzPlan(f *testing.F) {
	idx, err := Open(strings.NewReader(
		`<lib><book><title>sensor network</title><year>2010</year></book><book><title>query ranking network</title></book></lib>`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add("sensor network", 10)
	f.Add("query", 0)
	f.Add("", 3)
	f.Add("zzz absent words", -5)
	f.Add("sensor sensor network SENSOR", 1<<20)
	f.Add("the and of", 1) // stopwords only
	f.Fuzz(func(t *testing.T, query string, k int) {
		opt := SearchOptions{Algorithm: AlgoAuto}
		p, err := idx.Plan(query, k, opt)
		if err != nil {
			if len(Keywords(query)) > 0 && err != ErrNoKeywords {
				t.Fatalf("planner rejected servable query %q: %v", query, err)
			}
			return
		}
		e := engines.ByName(p.Engine)
		if e == nil {
			t.Fatalf("plan names unregistered engine %q", p.Engine)
		}
		want := exec.CapComplete
		if k > 0 {
			want = exec.CapTopK
		}
		if e.Caps&want == 0 {
			t.Fatalf("engine %q lacks the planned mode (k=%d)", p.Engine, k)
		}
		// Planned queries execute; bound huge k so the fuzzer stays fast
		// (the document is tiny — results are capped by it anyway).
		switch {
		case k <= 0:
			if _, err := idx.Search(query, opt); err != nil {
				t.Fatalf("planned query failed to execute: %v", err)
			}
		case k <= 1<<10:
			if _, err := idx.TopK(query, k, opt); err != nil {
				t.Fatalf("planned top-%d query failed to execute: %v", k, err)
			}
		}
	})
}
