package xmlsearch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
)

// FuzzLoadMeta drives the index.meta parser with mutations of a real saved
// numbering. The parser must never panic, must bound the declared node
// count before allocating, and anything it accepts must be a complete,
// nonzero numbering.
func FuzzLoadMeta(f *testing.F) {
	idx, err := Open(strings.NewReader(
		`<lib><book><title>sensor network</title></book><book><title>query ranking</title></book></lib>`))
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	if err := idx.Save(dir); err != nil {
		f.Fatal(err)
	}
	gen, v2, err := colstore.CurrentGen(dir)
	if err != nil || !v2 {
		f.Fatalf("no commit point: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, genFileName(fileMeta, gen, true)))
	if err != nil {
		f.Fatal(err)
	}
	payload, err := colstore.StripFooter(raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add(raw) // footer attached: trailing bytes, must be rejected
	f.Add(append([]byte(indexMetaMagic), payload[len(indexMetaMagicV2):]...))
	f.Add([]byte(indexMetaMagicV2))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, jds, err := parseIndexMeta(data)
		if err != nil {
			return
		}
		for i, v := range jds {
			if v == 0 {
				t.Fatalf("accepted numbering with zero at node %d", i)
			}
		}
	})
}
