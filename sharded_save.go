package xmlsearch

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/colstore"
	"repro/internal/faultinject"
)

// Sharded persistence layout: one root directory holding a shards.meta
// manifest committed under the root's own CURRENT (the PR-1 generation
// scheme), plus one complete per-shard index directory per shard —
// "shard-000", "shard-001", … — each with its own generations and
// CURRENT. A crash mid-save leaves every piece either at its previous
// generation or its new one, never torn.

const fileShardsMeta = "shards.meta"

const shardsMetaMagic = "XKWSHRD1\n"

// shardDirName is the fixed per-shard subdirectory name.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// encodeShardsMeta serializes the manifest: magic plus the shard count.
func encodeShardsMeta(n int) []byte {
	buf := []byte(shardsMetaMagic)
	return binary.AppendUvarint(buf, uint64(n))
}

// parseShardsMeta decodes a shards.meta payload, rejecting truncation,
// trailing bytes, and implausible counts before anything is allocated.
func parseShardsMeta(meta []byte) (int, error) {
	if len(meta) < len(shardsMetaMagic) || string(meta[:len(shardsMetaMagic)]) != shardsMetaMagic {
		return 0, fmt.Errorf("xmlsearch: load: not a shards.meta file")
	}
	n, sz := binary.Uvarint(meta[len(shardsMetaMagic):])
	if sz <= 0 || n == 0 || n > 1<<20 {
		return 0, fmt.Errorf("xmlsearch: load: bad shard count")
	}
	if len(shardsMetaMagic)+sz != len(meta) {
		return 0, fmt.Errorf("xmlsearch: load: trailing bytes after shard count")
	}
	return int(n), nil
}

// Save persists the sharded index under dir: every shard as a complete
// index directory of its own, then the manifest, committed atomically.
// The routing table is write-locked for the duration, so the saved
// shards form one consistent partition of the corpus.
func (sh *Sharded) Save(dir string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fsys := faultinject.OS()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	for i, ix := range sh.shards {
		if err := ix.Save(filepath.Join(dir, shardDirName(i))); err != nil {
			return err
		}
	}
	gen, err := colstore.NextGen(dir)
	if err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	path := filepath.Join(dir, colstore.GenName(fileShardsMeta, gen))
	if err := fsys.WriteFile(path, colstore.AppendFooter(encodeShardsMeta(len(sh.shards))), 0o644); err != nil {
		return fmt.Errorf("xmlsearch: save %s: %w", fileShardsMeta, err)
	}
	if err := colstore.CommitGen(dir, gen, fsys); err != nil {
		return err
	}
	colstore.RemoveStaleGens(dir, gen, fsys, fileShardsMeta)
	return nil
}

// EnableWAL makes every shard durable under dir: each shard gets its own
// write-ahead log in dir/shard-NNN (mutations route to exactly one
// shard's log, Dewey-routed as always), and the manifest is committed so
// dir is immediately loadable with LoadSharded — which replays every
// shard's log. Per-shard logs mean a mutation's group commit never
// serializes behind an unrelated shard's fsync.
func (sh *Sharded) EnableWAL(dir string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fsys := faultinject.OS()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmlsearch: wal: %w", err)
	}
	for i, ix := range sh.shards {
		if err := ix.EnableWAL(filepath.Join(dir, shardDirName(i))); err != nil {
			return err
		}
	}
	gen, err := colstore.NextGen(dir)
	if err != nil {
		return fmt.Errorf("xmlsearch: wal: %w", err)
	}
	path := filepath.Join(dir, colstore.GenName(fileShardsMeta, gen))
	if err := fsys.WriteFile(path, colstore.AppendFooter(encodeShardsMeta(len(sh.shards))), 0o644); err != nil {
		return fmt.Errorf("xmlsearch: save %s: %w", fileShardsMeta, err)
	}
	if err := colstore.CommitGen(dir, gen, fsys); err != nil {
		return err
	}
	colstore.RemoveStaleGens(dir, gen, fsys, fileShardsMeta)
	return nil
}

// Compact synchronously folds every shard's delta segment (and rotates
// its log, when one is attached). Shards compact independently; a shard
// with nothing pending is a no-op.
func (sh *Sharded) Compact() error {
	for _, ix := range sh.shards {
		if err := ix.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// SetCompactionThreshold tunes every shard's background compaction
// trigger (see Index.SetCompactionThreshold).
func (sh *Sharded) SetCompactionThreshold(n int) {
	for _, ix := range sh.shards {
		ix.SetCompactionThreshold(n)
	}
}

// Close stops every shard's background compactor and detaches its log.
// The first error is returned; every shard is closed regardless.
func (sh *Sharded) Close() error {
	var first error
	for _, ix := range sh.shards {
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// IsShardedDir reports whether dir looks like a sharded index directory
// (used by xkwserve to auto-detect the layout).
func IsShardedDir(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, shardDirName(0)))
	return err == nil && fi.IsDir()
}

// LoadSharded opens a sharded index directory written by Save. Each
// shard loads with Index.Load's degradation contract (quarantined terms
// read as absent; see Health for the merged report).
func LoadSharded(dir string) (*Sharded, error) {
	gen, v2, err := colstore.CurrentGen(dir)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, genFileName(fileShardsMeta, gen, v2)))
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	if v2 {
		if raw, err = colstore.StripFooter(raw); err != nil {
			return nil, fmt.Errorf("xmlsearch: load %s: %w", fileShardsMeta, err)
		}
	}
	n, err := parseShardsMeta(raw)
	if err != nil {
		return nil, err
	}
	shards := make([]*Index, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		ix, err := Load(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			return nil, fmt.Errorf("xmlsearch: load %s: %w", shardDirName(i), err)
		}
		if ix.cfg.elemRank {
			return nil, fmt.Errorf("xmlsearch: load %s: sharding does not support ElemRank", shardDirName(i))
		}
		shards[i] = ix
		// WAL replay may leave the shard's published snapshot carrying a
		// delta segment, so count through the delta-aware accessor.
		counts[i] = ix.rootChildCount()
	}
	return assembleSharded(shards, counts), nil
}
