package xmlsearch

import (
	"context"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/exec"
	"repro/internal/ixlookup"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/stack"
	"repro/internal/topk"
)

// The engine registry: every evaluator the facade can run, with its
// capability set, metrics slot, cost model, and the glue that adapts the
// pinned snapshot's data structures to the engine's inputs and its
// results back to the public Result type. The dispatch switches that
// used to live in context.go and explain.go are registry lookups now;
// the per-engine adapters live next to their registration.

// queryEngine is the registry instantiation for this facade.
type queryEngine = exec.Engine[*snapshot, Result]

// engines holds every evaluator. Registration order matters twice: the
// planner breaks cost ties in registration order, and ForAlgo returns
// the first capability match — "topk" precedes "join" so an explicit
// AlgoJoin top-K query runs the star join while a complete one runs the
// full bottom-up join, exactly as before.
var engines = exec.NewRegistry(
	&queryEngine{
		Name: "topk", Algo: int(AlgoJoin),
		Caps: exec.CapTopK | exec.CapStream | exec.CapPartial, Obs: obs.EngineTopK,
		Cost: exec.CostTopKJoin, Run: runTopKJoin, Stream: streamTopKJoin,
	},
	&queryEngine{
		Name: "join", Algo: int(AlgoJoin),
		Caps: exec.CapComplete | exec.CapTopK | exec.CapPartial, Obs: obs.EngineJoin,
		Cost: exec.CostJoin, Run: runJoin,
	},
	&queryEngine{
		Name: "stack", Algo: int(AlgoStack),
		Caps: exec.CapComplete | exec.CapTopK | exec.CapPartial, Obs: obs.EngineStack,
		Cost: exec.CostStack, Run: runStack,
	},
	&queryEngine{
		Name: "ixlookup", Algo: int(AlgoIndexLookup),
		Caps: exec.CapComplete | exec.CapTopK, Obs: obs.EngineIxLookup,
		Cost: exec.CostIxLookup, Run: runIxLookup,
	},
	&queryEngine{
		Name: "rdil", Algo: int(AlgoRDIL),
		Caps: exec.CapTopK, Obs: obs.EngineRDIL,
		Cost: exec.CostRDIL, Run: runRDIL,
	},
	&queryEngine{
		Name: "hybrid", Algo: int(AlgoHybrid),
		Caps: exec.CapTopK, Obs: obs.EngineHybrid,
		Cost: exec.CostHybrid, Run: runHybrid,
	},
)

// abortedMeta is the RunMeta of an evaluation cut short without a
// certification bound: nothing about the unseen results is known, so the
// bound is +Inf and no returned result can be marked exact.
func abortedMeta() exec.RunMeta {
	return exec.RunMeta{Partial: true, UnseenBound: math.Inf(1)}
}

// runJoin is the complete join-based evaluation (Section III). With
// K > 0 — reachable only through the planner choosing sort-after-complete
// for a small expected result set — it truncates the ranked set. On a
// deadline/budget abort the results accumulated so far come back ranked,
// but with an infinite unseen bound: the bottom-up merge visits results in
// document order, not score order, so nothing can be certified.
func runJoin(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	lists, lerr := s.store.ListsBudget(q.Keywords, tr, q.Budget)
	tr.End(osp)
	if lerr != nil {
		return nil, abortedMeta(), lerr
	}
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	rs, _, err := core.EvaluateCtx(ctx, lists, core.Options{Semantics: coreSem(Semantics(q.Semantics)), Decay: q.Decay, Trace: tr})
	if err != nil {
		core.SortByScore(rs)
		return truncate(s.materializeJoin(rs), q.K), abortedMeta(), err
	}
	core.SortByScore(rs)
	return truncate(s.materializeJoin(rs), q.K), exec.RunMeta{}, nil
}

// runTopKJoin is the top-K star join (Section IV): score-ordered cursors
// with threshold-proven early termination. On abort the engine reports the
// Section IV-B/IV-C threshold as the unseen bound, so the results already
// proven (score ≥ bound) can be certified exact by the facade.
func runTopKJoin(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	lists, lerr := s.store.TopKListsBudget(q.Keywords, tr, q.Budget)
	tr.End(osp)
	if lerr != nil {
		return nil, abortedMeta(), lerr
	}
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	rs, st, err := topk.EvaluateCtx(ctx, lists, topk.Options{
		Semantics: coreSem(Semantics(q.Semantics)), Decay: q.Decay, K: q.K, Trace: tr,
		Budget: q.Budget, Partial: q.AllowPartial,
	})
	return s.materializeJoin(rs), exec.RunMeta{Partial: st.Partial, UnseenBound: st.UnseenBound}, err
}

// streamTopKJoin delivers each star-join result the moment the threshold
// proves it safe. Results whose node vanished from the snapshot's tree
// are skipped without counting against delivery. A deadline/budget abort
// simply ends the stream early: every delivered result was already
// threshold-proven, so nothing unproven ever reaches the consumer.
func streamTopKJoin(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace, emit func(Result) bool) (int, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	lists, lerr := s.store.TopKListsBudget(q.Keywords, tr, q.Budget)
	tr.End(osp)
	if lerr != nil {
		return 0, abortedMeta(), lerr
	}
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	delivered := 0
	_, st, err := topk.EvaluateFuncCtx(ctx, lists, topk.Options{
		Semantics: coreSem(Semantics(q.Semantics)), Decay: q.Decay, K: q.K, Trace: tr,
		Budget: q.Budget,
	},
		func(r core.Result) bool {
			n := s.nodeByJDewey(r.Level, r.Value)
			if n == nil {
				return true
			}
			delivered++
			return emit(materializeNode(n, r.Score))
		})
	return delivered, exec.RunMeta{Partial: st.Partial, UnseenBound: st.UnseenBound}, err
}

// runStack is the stack-based baseline: full document-order merge, then
// rank (and truncate, for top-K). Like the complete join, its abort-time
// results carry no certification bound. The in-memory baseline lists are
// not budget-charged: the decoded-bytes budget bounds the column store's
// read path, which this engine does not use.
func runStack(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	lists := s.invListsObs(q.Keywords, tr)
	tr.End(osp)
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	rs, _, err := stack.EvaluateObsCtx(ctx, lists, stackSem(Semantics(q.Semantics)), q.Decay, tr)
	stack.SortByScore(rs)
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		out = append(out, s.materializeDewey(r.ID, r.Score))
	}
	if err != nil {
		return truncate(out, q.K), abortedMeta(), err
	}
	return truncate(out, q.K), exec.RunMeta{}, nil
}

// runIxLookup is the index-lookup baseline: shortest-list-driven probes,
// then rank by the canonical ordering (and truncate, for top-K).
func runIxLookup(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	lists := s.invListsObs(q.Keywords, tr)
	tr.End(osp)
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	rs, _, err := ixlookup.EvaluateObsCtx(ctx, lists, ixlookupSem(Semantics(q.Semantics)), q.Decay, tr)
	if err != nil {
		return nil, abortedMeta(), err
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if c := exec.Compare(rs[i].Score, rs[j].Score, len(rs[i].ID), len(rs[j].ID)); c != 0 {
			return c < 0
		}
		return dewey.Compare(rs[i].ID, rs[j].ID) < 0
	})
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		out = append(out, s.materializeDewey(r.ID, r.Score))
	}
	return truncate(out, q.K), exec.RunMeta{}, nil
}

// runRDIL is the RDIL top-K baseline (classic TA over score-ordered
// lists with random-access lookups).
func runRDIL(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	s.ensureInv()
	if tr != nil {
		s.invListsObs(q.Keywords, tr)
	}
	tr.End(osp)
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	rs, _, err := s.rdilIdx.TopKObsCtx(ctx, q.Keywords, rdilSem(Semantics(q.Semantics)), q.Decay, q.K, tr)
	if err != nil {
		return nil, abortedMeta(), err
	}
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		out = append(out, s.materializeDewey(r.ID, r.Score))
	}
	return out, exec.RunMeta{}, nil
}

// runHybrid is the Section V-D strategy: a cardinality estimate decides
// between the star join and the complete evaluation. Its abort-time
// results are discarded rather than certified: which branch ran (and so
// whether a bound exists) is a planning detail the facade cannot see.
func runHybrid(ctx context.Context, s *snapshot, q exec.Query, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	osp := tr.Stage(obs.StageOpen)
	colLists, lerr := s.store.ListsBudget(q.Keywords, tr, q.Budget)
	if lerr != nil {
		tr.End(osp)
		return nil, abortedMeta(), lerr
	}
	tkLists, lerr := s.store.TopKListsBudget(q.Keywords, tr, q.Budget)
	tr.End(osp)
	if lerr != nil {
		return nil, abortedMeta(), lerr
	}
	jsp := tr.Stage(obs.StageJoin)
	defer tr.End(jsp)
	rs, _, err := topk.EvaluateHybridCtx(ctx, colLists, tkLists,
		topk.HybridOptions{Semantics: coreSem(Semantics(q.Semantics)), Decay: q.Decay, K: q.K, Trace: tr, Budget: q.Budget})
	if err != nil {
		return nil, abortedMeta(), err
	}
	return s.materializeJoin(rs), exec.RunMeta{}, nil
}

// truncate caps a ranked result slice at k (0 = no cap).
func truncate(rs []Result, k int) []Result {
	if k > 0 && k < len(rs) {
		return rs[:k]
	}
	return rs
}

func effectiveDecay(d float64) float64 {
	if d == 0 {
		return score.DefaultDecay
	}
	return d
}

func ixlookupSem(s Semantics) ixlookup.Semantics {
	if s == SLCA {
		return ixlookup.SLCA
	}
	return ixlookup.ELCA
}
