package xmlsearch

import (
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestExplainFullEvaluation(t *testing.T) {
	ds := gen.DBLP(0.02, 33)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Join(ds.Correlated[0], " ")
	ex, err := idx.Explain(q, 0, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Keywords) != 2 || len(ex.DocFreqs) != 2 {
		t.Fatalf("keywords/dfs: %+v", ex)
	}
	for i, df := range ex.DocFreqs {
		if df != idx.DocFreq(ex.Keywords[i]) {
			t.Errorf("df mismatch for %q", ex.Keywords[i])
		}
	}
	if ex.Levels == 0 || ex.MergeJoins+ex.IndexJoins == 0 {
		t.Errorf("join counters empty: %+v", ex)
	}
	rs, err := idx.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Results != len(rs) {
		t.Errorf("explain results %d, search %d", ex.Results, len(rs))
	}
	if s := ex.String(); !strings.Contains(s, "full ELCA") || !strings.Contains(s, "merge") {
		t.Errorf("String() = %q", s)
	}
}

func TestExplainTopK(t *testing.T) {
	ds := gen.DBLP(0.02, 33)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Join(ds.Correlated[0], " ")
	ex, err := idx.Explain(q, 5, SearchOptions{Semantics: SLCA})
	if err != nil {
		t.Fatal(err)
	}
	if ex.K != 5 || ex.Results == 0 {
		t.Fatalf("top-K explanation: %+v", ex)
	}
	if ex.RowsPulled == 0 || ex.RowsPulled > ex.RowsTotal {
		t.Errorf("row accounting: pulled %d of %d", ex.RowsPulled, ex.RowsTotal)
	}
	if s := ex.String(); !strings.Contains(s, "top-5 SLCA") {
		t.Errorf("String() = %q", s)
	}
}

func TestExplainErrors(t *testing.T) {
	idx, err := Open(strings.NewReader(`<r><a>x</a><b>y</b></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Explain("the", 0, SearchOptions{}); err == nil {
		t.Error("stopword query must error")
	}
	if _, err := idx.Explain("x y", 0, SearchOptions{Algorithm: AlgoStack}); err == nil {
		t.Error("baseline engines must be rejected")
	}
}
