package xmlsearch

import (
	"fmt"
	"sort"

	"repro/internal/dewey"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Incremental index maintenance. Section III-A of the paper specifies how
// the JDewey encoding absorbs document mutations: reserved number gaps
// take most insertions for free, and when a family's gap is exhausted only
// one ancestor subtree is renumbered. The index follows suit: a mutation
// rebuilds exactly the inverted lists whose occurrences — or whose
// occurrences' JDewey numbers — changed, instead of reindexing the
// document.
//
// Scoring note: the corpus constant N of the tf-idf local score stays
// frozen at its construction value, so unrelated lists keep their scores
// (standard incremental-IR practice); document frequencies of the touched
// terms are always recomputed. Mutations must be externally synchronized
// with queries.

// InsertElement adds a new leaf element <tag>text</tag> under the element
// identified by parentDewey (dotted notation, e.g. "1.2"), at child
// position pos (0 ≤ pos ≤ current child count). It returns the new
// element's Dewey identifier. Note that Dewey identifiers of following
// siblings shift, while JDewey-based identities move only if a gap-
// exhausted subtree had to be renumbered — the maintenance asymmetry the
// paper's encoding is designed around.
func (ix *Index) InsertElement(parentDewey string, pos int, tag, text string) (string, error) {
	if tag == "" {
		return "", fmt.Errorf("xmlsearch: empty element tag")
	}
	id, err := dewey.Parse(parentDewey)
	if err != nil {
		return "", fmt.Errorf("xmlsearch: bad parent id: %w", err)
	}
	parent := ix.doc.NodeByDewey(id)
	if parent == nil {
		return "", fmt.Errorf("xmlsearch: no element at %s", parentDewey)
	}
	if pos < 0 || pos > len(parent.Children) {
		return "", fmt.Errorf("xmlsearch: position %d out of range [0,%d]", pos, len(parent.Children))
	}
	child := &xmltree.Node{Tag: tag, Text: text}
	dirty := map[string]bool{}
	for _, term := range tokenize.Tokens(text) {
		dirty[term] = true
	}
	renumbered, err := ix.enc.Insert(parent, child, pos)
	if err != nil {
		return "", fmt.Errorf("xmlsearch: %w", err)
	}
	if renumbered != nil {
		collectTerms(renumbered, dirty)
	}
	ix.applyDirty(dirty)
	return child.Dewey.String(), nil
}

// RemoveElement detaches the element (and its whole subtree) identified by
// its Dewey identifier. The root cannot be removed.
func (ix *Index) RemoveElement(deweyStr string) error {
	id, err := dewey.Parse(deweyStr)
	if err != nil {
		return fmt.Errorf("xmlsearch: bad id: %w", err)
	}
	n := ix.doc.NodeByDewey(id)
	if n == nil {
		return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
	}
	if n.Parent == nil {
		return fmt.Errorf("xmlsearch: cannot remove the document root")
	}
	dirty := map[string]bool{}
	collectTerms(n, dirty)
	ix.enc.Remove(n)
	ix.applyDirty(dirty)
	return nil
}

// collectTerms accumulates every term occurring in the subtree of n.
func collectTerms(n *xmltree.Node, into map[string]bool) {
	if n.Text != "" {
		tokenize.Each(n.Text, func(term string) { into[term] = true })
	}
	for _, c := range n.Children {
		collectTerms(c, into)
	}
}

// applyDirty refreshes the occurrence map, rebuilds the dirty lists in the
// column store, and invalidates the lazily-built baseline indexes.
func (ix *Index) applyDirty(dirty map[string]bool) {
	ix.m.UpdateTerms(ix.doc, dirty)
	var ranks []float64
	if ix.cfg.elemRank {
		ranks = score.ElemRank(ix.doc, ix.cfg.erParams)
	}
	for term := range dirty {
		occs := ix.m.Terms[term]
		if ranks != nil {
			for i := range occs {
				occs[i].Score *= float32(ranks[occs[i].Node.Ord])
			}
		}
		// The occurrence map stays in document order (the baselines build
		// Dewey-sorted lists from it); the column store is keyed by
		// JDewey-sequence order, which no longer coincides with document
		// order once a subtree has been renumbered or a child has been
		// inserted out of number order — so sort a copy.
		sorted := make([]occur.Occ, len(occs))
		copy(sorted, occs)
		sortByJDewey(sorted)
		ix.store.Replace(term, sorted)
	}
	// The store keeps carrying the frozen scoring constant; only the depth
	// tracks the document.
	ix.store.SetMeta(ix.m.N, ix.doc.Depth)
	ix.invalidateBaselines()
}

func sortByJDewey(occs []occur.Occ) {
	seqs := make([]jdewey.Seq, len(occs))
	for i := range occs {
		seqs[i] = occs[i].Node.JDeweySeq()
	}
	idx := make([]int, len(occs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return jdewey.Compare(seqs[idx[a]], seqs[idx[b]]) < 0 })
	sorted := make([]occur.Occ, len(occs))
	for i, j := range idx {
		sorted[i] = occs[j]
	}
	copy(occs, sorted)
}
