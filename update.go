package xmlsearch

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dewey"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Incremental index maintenance. Section III-A of the paper specifies how
// the JDewey encoding absorbs document mutations: reserved number gaps
// take most insertions for free, and when a family's gap is exhausted only
// one ancestor subtree is renumbered. The index follows suit: a mutation
// rebuilds exactly the inverted lists whose occurrences — or whose
// occurrences' JDewey numbers — changed, instead of reindexing the
// document.
//
// Concurrency: mutations are snapshot-isolated from queries. A writer
// serializes against other writers (writeMu), clones the current
// snapshot's document, occurrence map, maintenance handle, and column
// store copy-on-write, applies the mutation and the list rebuilds entirely
// to the clone, and publishes the finished snapshot with one atomic swap.
// Queries pin a snapshot before the swap or after it — never in between —
// and never block behind the writer. The writer pays the clone (O(document)
// plus O(changed lists)); readers pay nothing.
//
// Scoring note: the corpus constant N of the tf-idf local score stays
// frozen at its construction value, so unrelated lists keep their scores
// (standard incremental-IR practice); document frequencies of the touched
// terms are always recomputed. When the index was built WithElemRank, a
// structural mutation shifts the link-based rank of potentially every
// node, so fresh ranks are re-applied to every list (see applyDirty) —
// rebuilding everything is the price of keeping scores consistent rather
// than letting untouched terms keep pre-mutation structural ranks.

// InsertElement adds a new leaf element <tag>text</tag> under the element
// identified by parentDewey (dotted notation, e.g. "1.2"), at child
// position pos (0 ≤ pos ≤ current child count). It returns the new
// element's Dewey identifier. Note that Dewey identifiers of following
// siblings shift, while JDewey-based identities move only if a gap-
// exhausted subtree had to be renumbered — the maintenance asymmetry the
// paper's encoding is designed around.
//
// The mutation is safe to run concurrently with queries: in-flight queries
// finish on the pre-mutation snapshot, queries starting after the return
// see the inserted element.
func (ix *Index) InsertElement(parentDewey string, pos int, tag, text string) (newDewey string, err error) {
	start := time.Now()
	var dirtyN int
	var renumbered bool
	defer func() {
		ix.metrics.Writer.RecordMutation(true, dirtyN, renumbered, time.Since(start), err)
	}()
	if tag == "" {
		return "", fmt.Errorf("xmlsearch: empty element tag")
	}
	id, err := dewey.Parse(parentDewey)
	if err != nil {
		return "", fmt.Errorf("xmlsearch: bad parent id: %w", err)
	}

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	cur := ix.view()
	if cur.doc.NodeByDewey(id) == nil {
		return "", fmt.Errorf("xmlsearch: no element at %s", parentDewey)
	}
	next := cur.clone()
	parent := next.doc.NodeByDewey(id) // same Dewey path resolves in the clone
	if pos < 0 || pos > len(parent.Children) {
		return "", fmt.Errorf("xmlsearch: position %d out of range [0,%d]", pos, len(parent.Children))
	}
	child := &xmltree.Node{Tag: tag, Text: text}
	dirty := map[string]bool{}
	for _, term := range tokenize.Tokens(text) {
		dirty[term] = true
	}
	moved, err := next.enc.Insert(parent, child, pos)
	if err != nil {
		return "", fmt.Errorf("xmlsearch: %w", err)
	}
	if moved != nil {
		renumbered = true
		collectTerms(moved, dirty)
	}
	dirtyN = ix.applyDirty(next, dirty)
	ix.publish(next)
	return child.Dewey.String(), nil
}

// RemoveElement detaches the element (and its whole subtree) identified by
// its Dewey identifier. The root cannot be removed. Like InsertElement it
// is snapshot-isolated from concurrent queries.
func (ix *Index) RemoveElement(deweyStr string) (err error) {
	start := time.Now()
	var dirtyN int
	defer func() {
		ix.metrics.Writer.RecordMutation(false, dirtyN, false, time.Since(start), err)
	}()
	id, err := dewey.Parse(deweyStr)
	if err != nil {
		return fmt.Errorf("xmlsearch: bad id: %w", err)
	}

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	cur := ix.view()
	victim := cur.doc.NodeByDewey(id)
	if victim == nil {
		return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
	}
	if victim.Parent == nil {
		return fmt.Errorf("xmlsearch: cannot remove the document root")
	}
	next := cur.clone()
	n := next.doc.NodeByDewey(id)
	dirty := map[string]bool{}
	collectTerms(n, dirty)
	next.enc.Remove(n)
	dirtyN = ix.applyDirty(next, dirty)
	ix.publish(next)
	return nil
}

// publish stamps the next snapshot's generation, swaps it in atomically,
// and drops every cached query plan built against earlier generations.
// The plan cache is keyed on the generation too, so even without the
// eager invalidation a stale plan could never be served — invalidation
// just reclaims the dead entries immediately.
func (ix *Index) publish(next *snapshot) {
	next.gen = ix.gen.Load() + 1
	ix.snap.Store(next)
	ix.gen.Add(1)
	ix.plans.Invalidate(next.gen)
}

// clone duplicates a snapshot copy-on-write: the document tree is deep-
// copied, the occurrence map is remapped onto the cloned nodes, the JDewey
// maintenance handle is re-homed, and the column store's term maps are
// copied while the immutable lists, blobs, and shared decode cache carry
// over. The clone shares no mutable state with the original, so the writer
// may freely mutate it while the original keeps serving queries.
func (s *snapshot) clone() *snapshot {
	doc := s.doc.Clone()
	return &snapshot{
		doc:   doc,
		m:     s.m.CloneRemapped(doc.Nodes),
		store: s.store.Clone(),
		enc:   s.enc.CloneFor(doc),
	}
}

// collectTerms accumulates every term occurring in the subtree of n.
func collectTerms(n *xmltree.Node, into map[string]bool) {
	if n.Text != "" {
		tokenize.Each(n.Text, func(term string) { into[term] = true })
	}
	for _, c := range n.Children {
		collectTerms(c, into)
	}
}

// applyDirty refreshes the occurrence map of the snapshot under
// construction, rebuilds the dirty lists in its column store, and returns
// how many lists were rebuilt. With ElemRank enabled, the dirty set is
// widened to every indexed term: the link-based rank is a global property
// of the tree, so a structural mutation moves the rank factor of
// occurrences far from the mutation site, and re-applying fresh ranks
// everywhere is what keeps the published snapshot's scores mutually
// consistent (the alternative — freezing ranks like the corpus constant N
// — would let two occurrences of one term carry ranks from different tree
// generations).
func (ix *Index) applyDirty(s *snapshot, dirty map[string]bool) int {
	if ix.cfg.elemRank {
		for term := range s.m.Terms {
			dirty[term] = true
		}
	}
	s.m.UpdateTerms(s.doc, dirty)
	var ranks []float64
	if ix.cfg.elemRank {
		ranks = score.ElemRank(s.doc, ix.cfg.erParams)
	}
	for term := range dirty {
		occs := s.m.Terms[term]
		if ranks != nil {
			for i := range occs {
				occs[i].Score *= float32(ranks[occs[i].Node.Ord])
			}
		}
		// The occurrence map stays in document order (the baselines build
		// Dewey-sorted lists from it); the column store is keyed by
		// JDewey-sequence order, which no longer coincides with document
		// order once a subtree has been renumbered or a child has been
		// inserted out of number order — so sort a copy.
		sorted := make([]occur.Occ, len(occs))
		copy(sorted, occs)
		sortByJDewey(sorted)
		s.store.Replace(term, sorted)
	}
	// The store keeps carrying the frozen scoring constant; only the depth
	// tracks the document.
	s.store.SetMeta(s.m.N, s.doc.Depth)
	return len(dirty)
}

// sortByJDewey stably sorts occurrences into JDewey-sequence order. The
// sequences are computed once up front (they cost a root-path walk each)
// into a single keyed slice that is sorted in place and written back —
// one allocation, against the former three (seqs + permutation + sorted
// copy) of sorting an index permutation and applying it.
func sortByJDewey(occs []occur.Occ) {
	if len(occs) < 2 {
		return
	}
	type keyed struct {
		seq jdewey.Seq
		occ occur.Occ
	}
	ks := make([]keyed, len(occs))
	for i := range occs {
		ks[i] = keyed{seq: occs[i].Node.JDeweySeq(), occ: occs[i]}
	}
	sort.SliceStable(ks, func(a, b int) bool { return jdewey.Compare(ks[a].seq, ks[b].seq) < 0 })
	for i := range ks {
		occs[i] = ks[i].occ
	}
}
