package xmlsearch

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dewey"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Incremental index maintenance. Section III-A of the paper specifies how
// the JDewey encoding absorbs document mutations: reserved number gaps
// take most insertions for free, and when a family's gap is exhausted only
// one ancestor subtree is renumbered. The index follows suit — and goes
// one step further: the write path is a base ⊕ delta design (see
// delta.go). An appending leaf insert costs O(delta + touched lists): it
// is recorded in a small immutable delta segment layered over the base
// snapshot instead of cloning the corpus. Removals, non-append inserts,
// gap-exhausted inserts, and ElemRank indexes take the materializing slow
// path, which folds the delta and clones the document the classic way.
// Either way the mutation is appended (and fsynced) to the write-ahead
// log first when one is attached (see walindex.go), so an acknowledged
// mutation survives a crash.
//
// Concurrency: mutations are snapshot-isolated from queries. A writer
// serializes against other writers (writeMu), builds the successor
// snapshot off to the side — delta segment or full clone — and publishes
// it with one atomic swap. Queries pin a snapshot before the swap or
// after it — never in between — and never block behind the writer.
//
// Scoring note: the corpus constant N of the tf-idf local score stays
// frozen at its construction value, so unrelated lists keep their scores
// (standard incremental-IR practice); document frequencies of the touched
// terms are always recomputed, on both paths. When the index was built
// WithElemRank, a structural mutation shifts the link-based rank of
// potentially every node, so fresh ranks are re-applied to every list
// (see applyDirty); ApplyBatch amortizes that full re-rank (and the WAL
// fsync) across a whole batch.

// InsertElement adds a new leaf element <tag>text</tag> under the element
// identified by parentDewey (dotted notation, e.g. "1.2"), at child
// position pos (0 ≤ pos ≤ current child count). It returns the new
// element's Dewey identifier. Note that Dewey identifiers of following
// siblings shift, while JDewey-based identities move only if a gap-
// exhausted subtree had to be renumbered — the maintenance asymmetry the
// paper's encoding is designed around.
//
// The mutation is safe to run concurrently with queries: in-flight queries
// finish on the pre-mutation snapshot, queries starting after the return
// see the inserted element.
func (ix *Index) InsertElement(parentDewey string, pos int, tag, text string) (newDewey string, err error) {
	start := time.Now()
	var dirtyN int
	var renumbered bool
	defer func() {
		ix.metrics.Writer.RecordMutation(true, dirtyN, renumbered, time.Since(start), err)
	}()
	if tag == "" {
		return "", fmt.Errorf("xmlsearch: empty element tag")
	}
	id, err := dewey.Parse(parentDewey)
	if err != nil {
		return "", fmt.Errorf("xmlsearch: bad parent id: %w", err)
	}

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed.Load() {
		return "", errIndexClosed
	}
	cur := ix.view()
	parent := cur.nodeByDewey(id)
	if parent == nil {
		return "", fmt.Errorf("xmlsearch: no element at %s", parentDewey)
	}
	if pos < 0 || pos > len(cur.visibleChildren(parent)) {
		return "", fmt.Errorf("xmlsearch: position %d out of range [0,%d]", pos, len(cur.visibleChildren(parent)))
	}

	var next *snapshot
	if fast, ok := ix.fastInsert(cur, parent, pos, tag, text); ok {
		next = fast
		dirtyN = len(tokenize.TermCounts(text))
		newDewey = fast.delta.ops[len(fast.delta.ops)-1].parentChildDewey()
	} else {
		next = ix.materializeOf(cur)
		p := next.doc.NodeByDewey(id) // Dewey paths survive materialization
		child := &xmltree.Node{Tag: tag, Text: text}
		dirty := map[string]bool{}
		for _, term := range tokenize.Tokens(text) {
			dirty[term] = true
		}
		moved, ierr := next.enc.Insert(p, child, pos)
		if ierr != nil {
			return "", fmt.Errorf("xmlsearch: %w", ierr)
		}
		if moved != nil {
			renumbered = true
			collectTerms(moved, dirty)
		}
		dirtyN = ix.applyDirty(next, dirty)
		next.epoch = ix.epochs.Add(1)
		newDewey = child.Dewey.String()
	}
	if err := ix.walAppend([][]byte{encodeInsertRecord(parentDewey, pos, tag, text)}); err != nil {
		return "", err
	}
	ix.publish(next)
	ix.maybeCompact()
	return newDewey, nil
}

// parentChildDewey renders the Dewey identifier the op's child received.
func (op deltaOp) parentChildDewey() string {
	id := append(op.parent.Clone(), uint32(op.pos+1))
	return id.String()
}

// RemoveElement detaches the element (and its whole subtree) identified by
// its Dewey identifier. The root cannot be removed. Like InsertElement it
// is snapshot-isolated from concurrent queries. Removals always take the
// materializing slow path — the delta segment is append-only, so it never
// needs tombstones.
func (ix *Index) RemoveElement(deweyStr string) (err error) {
	start := time.Now()
	var dirtyN int
	defer func() {
		ix.metrics.Writer.RecordMutation(false, dirtyN, false, time.Since(start), err)
	}()
	id, err := dewey.Parse(deweyStr)
	if err != nil {
		return fmt.Errorf("xmlsearch: bad id: %w", err)
	}

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed.Load() {
		return errIndexClosed
	}
	cur := ix.view()
	victim := cur.nodeByDewey(id)
	if victim == nil {
		return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
	}
	if victim.Parent == nil {
		return fmt.Errorf("xmlsearch: cannot remove the document root")
	}
	next := ix.materializeOf(cur)
	n := next.doc.NodeByDewey(id)
	dirty := map[string]bool{}
	collectTerms(n, dirty)
	next.enc.Remove(n)
	dirtyN = ix.applyDirty(next, dirty)
	next.epoch = ix.epochs.Add(1)
	if err := ix.walAppend([][]byte{encodeRemoveRecord(deweyStr)}); err != nil {
		return err
	}
	ix.publish(next)
	ix.maybeCompact()
	return nil
}

// Mutation is one operation of an ApplyBatch call: an insert of a leaf
// element (<Tag>Text</Tag> under parent ID at position Pos) or, with
// Remove set, the removal of the subtree at ID.
type Mutation struct {
	Remove bool
	// ID is the parent's Dewey identifier for an insert, the victim's for
	// a removal.
	ID   string
	Pos  int
	Tag  string
	Text string
}

// ApplyBatch applies the mutations in order as one atomic publish: queries
// observe either none or all of them, the write-ahead log is fsynced once
// for the whole batch (the group commit), and — on an ElemRank index — the
// global re-rank runs once instead of once per mutation. The returned
// slice carries the new Dewey identifier of each insert ("" for
// removals). Validation is all-or-nothing: the first invalid operation
// aborts the batch with nothing applied, nothing logged.
func (ix *Index) ApplyBatch(muts []Mutation) (ids []string, err error) {
	if len(muts) == 0 {
		return nil, nil
	}
	start := time.Now()
	defer func() {
		per := time.Since(start) / time.Duration(len(muts))
		for _, m := range muts {
			ix.metrics.Writer.RecordMutation(!m.Remove, 0, false, per, err)
		}
	}()

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed.Load() {
		return nil, errIndexClosed
	}
	cur := ix.view()
	ids = make([]string, len(muts))
	records := make([][]byte, len(muts))

	// First try the all-fast chain: every op an eligible appending insert,
	// each building a private successor delta. Any removal or ineligible
	// insert abandons the chain for the materializing path below.
	next := cur
	fastOK := true
	for i, m := range muts {
		if m.Remove {
			fastOK = false
			break
		}
		id, perr := dewey.Parse(m.ID)
		if perr != nil {
			return nil, fmt.Errorf("xmlsearch: bad parent id: %w", perr)
		}
		if m.Tag == "" {
			return nil, fmt.Errorf("xmlsearch: empty element tag")
		}
		parent := next.nodeByDewey(id)
		if parent == nil {
			return nil, fmt.Errorf("xmlsearch: no element at %s", m.ID)
		}
		if m.Pos < 0 || m.Pos > len(next.visibleChildren(parent)) {
			return nil, fmt.Errorf("xmlsearch: position %d out of range [0,%d]", m.Pos, len(next.visibleChildren(parent)))
		}
		ns, ok := ix.fastInsert(next, parent, m.Pos, m.Tag, m.Text)
		if !ok {
			fastOK = false
			break
		}
		next = ns
		ids[i] = ns.delta.ops[len(ns.delta.ops)-1].parentChildDewey()
		records[i] = encodeInsertRecord(m.ID, m.Pos, m.Tag, m.Text)
	}

	if !fastOK {
		// Materialize once, apply everything against the real tree, rebuild
		// dirty lists (and, with ElemRank, re-rank) once.
		next = ix.materializeOf(cur)
		dirty := map[string]bool{}
		for i, m := range muts {
			id, perr := dewey.Parse(m.ID)
			if perr != nil {
				if m.Remove {
					return nil, fmt.Errorf("xmlsearch: bad id: %w", perr)
				}
				return nil, fmt.Errorf("xmlsearch: bad parent id: %w", perr)
			}
			if m.Remove {
				n := next.doc.NodeByDewey(id)
				if n == nil {
					return nil, fmt.Errorf("xmlsearch: no element at %s", m.ID)
				}
				if n.Parent == nil {
					return nil, fmt.Errorf("xmlsearch: cannot remove the document root")
				}
				collectTerms(n, dirty)
				next.enc.Remove(n)
				records[i] = encodeRemoveRecord(m.ID)
				continue
			}
			if m.Tag == "" {
				return nil, fmt.Errorf("xmlsearch: empty element tag")
			}
			parent := next.doc.NodeByDewey(id)
			if parent == nil {
				return nil, fmt.Errorf("xmlsearch: no element at %s", m.ID)
			}
			if m.Pos < 0 || m.Pos > len(parent.Children) {
				return nil, fmt.Errorf("xmlsearch: position %d out of range [0,%d]", m.Pos, len(parent.Children))
			}
			child := &xmltree.Node{Tag: m.Tag, Text: m.Text}
			for _, term := range tokenize.Tokens(m.Text) {
				dirty[term] = true
			}
			moved, ierr := next.enc.Insert(parent, child, m.Pos)
			if ierr != nil {
				return nil, fmt.Errorf("xmlsearch: %w", ierr)
			}
			if moved != nil {
				collectTerms(moved, dirty)
			}
			ids[i] = child.Dewey.String()
			records[i] = encodeInsertRecord(m.ID, m.Pos, m.Tag, m.Text)
		}
		ix.applyDirty(next, dirty)
		next.epoch = ix.epochs.Add(1)
	}

	if err := ix.walAppend(records); err != nil {
		return nil, err
	}
	ix.publish(next)
	ix.maybeCompact()
	return ids, nil
}

// publish stamps the next snapshot's generation, swaps it in atomically,
// and drops every cached query plan built against earlier generations.
// The plan cache is keyed on the generation too, so even without the
// eager invalidation a stale plan could never be served — invalidation
// just reclaims the dead entries immediately.
func (ix *Index) publish(next *snapshot) {
	next.gen = ix.gen.Load() + 1
	ix.snap.Store(next)
	ix.gen.Add(1)
	ix.plans.Invalidate(next.gen)
}

// collectTerms accumulates every term occurring in the subtree of n.
func collectTerms(n *xmltree.Node, into map[string]bool) {
	if n.Text != "" {
		tokenize.Each(n.Text, func(term string) { into[term] = true })
	}
	for _, c := range n.Children {
		collectTerms(c, into)
	}
}

// applyDirty refreshes the occurrence map of the snapshot under
// construction, rebuilds the dirty lists in its column store, and returns
// how many lists were rebuilt. With ElemRank enabled, the dirty set is
// widened to every indexed term: the link-based rank is a global property
// of the tree, so a structural mutation moves the rank factor of
// occurrences far from the mutation site, and re-applying fresh ranks
// everywhere is what keeps the published snapshot's scores mutually
// consistent (the alternative — freezing ranks like the corpus constant N
// — would let two occurrences of one term carry ranks from different tree
// generations).
func (ix *Index) applyDirty(s *snapshot, dirty map[string]bool) int {
	if ix.cfg.elemRank {
		for term := range s.m.Terms {
			dirty[term] = true
		}
	}
	s.m.UpdateTerms(s.doc, dirty)
	var ranks []float64
	if ix.cfg.elemRank {
		ranks = score.ElemRank(s.doc, ix.cfg.erParams)
	}
	for term := range dirty {
		occs := s.m.Terms[term]
		if ranks != nil {
			for i := range occs {
				occs[i].Score *= float32(ranks[occs[i].Node.Ord])
			}
		}
		// The occurrence map stays in document order (the baselines build
		// Dewey-sorted lists from it); the column store is keyed by
		// JDewey-sequence order, which no longer coincides with document
		// order once a subtree has been renumbered or a child has been
		// inserted out of number order — so sort a copy.
		sorted := make([]occur.Occ, len(occs))
		copy(sorted, occs)
		sortByJDewey(sorted)
		s.store.Replace(term, sorted)
	}
	// The store keeps carrying the frozen scoring constant; only the depth
	// tracks the document.
	s.store.SetMeta(s.m.N, s.doc.Depth)
	return len(dirty)
}

// sortByJDewey stably sorts occurrences into JDewey-sequence order. The
// sequences are computed once up front (they cost a root-path walk each)
// into a single keyed slice that is sorted in place and written back —
// one allocation, against the former three (seqs + permutation + sorted
// copy) of sorting an index permutation and applying it.
func sortByJDewey(occs []occur.Occ) {
	if len(occs) < 2 {
		return
	}
	type keyed struct {
		seq jdewey.Seq
		occ occur.Occ
	}
	ks := make([]keyed, len(occs))
	for i := range occs {
		ks[i] = keyed{seq: occs[i].Node.JDeweySeq(), occ: occs[i]}
	}
	sort.SliceStable(ks, func(a, b int) bool { return jdewey.Compare(ks[a].seq, ks[b].seq) < 0 })
	for i := range ks {
		occs[i] = ks[i].occ
	}
}
