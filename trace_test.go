package xmlsearch

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/naive"
	"repro/internal/obs"
)

// traceEnv builds a small deterministic corpus once per test.
func traceEnv(t *testing.T) (*Index, string) {
	t.Helper()
	ds := gen.DBLP(0.02, 33)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	return idx, strings.Join(ds.Correlated[0], " ")
}

// assertGolden runs the traced query twice and checks that the time-free
// signature is deterministic and contains the engine's landmark events.
func assertGolden(t *testing.T, run func() *QueryStats, fragments ...string) string {
	t.Helper()
	qs1, qs2 := run(), run()
	sig1, sig2 := qs1.Trace.Signature(), qs2.Trace.Signature()
	if sig1 == "" {
		t.Fatal("empty trace signature")
	}
	if sig1 != sig2 {
		t.Fatalf("trace signature not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sig1, sig2)
	}
	for _, f := range fragments {
		if !strings.Contains(sig1, f) {
			t.Errorf("signature missing %q:\n%s", f, sig1)
		}
	}
	return sig1
}

func TestGoldenTraceTopKJoin(t *testing.T) {
	idx, q := traceEnv(t)
	sig := assertGolden(t, func() *QueryStats {
		rs, qs, err := idx.TopKTraced(context.Background(), q, 3, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) == 0 {
			t.Fatal("no results")
		}
		if qs.Engine != obs.EngineTopK.String() {
			t.Fatalf("engine = %q", qs.Engine)
		}
		return qs
	}, "join-order(star:rows=", "threshold(lev=", "emit(lev=")
	if !strings.Contains(sig, "list-open(") {
		t.Errorf("star join must open its lists:\n%s", sig)
	}
}

func TestGoldenTraceSearchJoin(t *testing.T) {
	idx, q := traceEnv(t)
	assertGolden(t, func() *QueryStats {
		_, qs, err := idx.SearchTraced(context.Background(), q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}, "join-order(rows:", "join-step(")
}

func TestGoldenTraceStack(t *testing.T) {
	idx, q := traceEnv(t)
	assertGolden(t, func() *QueryStats {
		_, qs, err := idx.SearchTraced(context.Background(), q, SearchOptions{Algorithm: AlgoStack})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}, "list-open(", "join-order(doc-order-merge:rows=", "note(stack pushes/pops/postings")
}

func TestGoldenTraceIxLookup(t *testing.T) {
	idx, q := traceEnv(t)
	assertGolden(t, func() *QueryStats {
		_, qs, err := idx.SearchTraced(context.Background(), q, SearchOptions{Algorithm: AlgoIndexLookup})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}, "list-open(", "join-order(driver=", "note(ixlookup driver/probes/candidates")
}

func TestGoldenTraceRDIL(t *testing.T) {
	idx, q := traceEnv(t)
	assertGolden(t, func() *QueryStats {
		_, qs, err := idx.TopKTraced(context.Background(), q, 3, SearchOptions{Algorithm: AlgoRDIL})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}, "join-order(score-order-round-robin:rows=", "note(rdil pulled/probes/verifications")
}

func TestGoldenTraceHybrid(t *testing.T) {
	idx, q := traceEnv(t)
	assertGolden(t, func() *QueryStats {
		_, qs, err := idx.TopKTraced(context.Background(), q, 3, SearchOptions{Algorithm: AlgoHybrid})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}, "plan-switch(")
}

func TestGoldenTraceNaive(t *testing.T) {
	ds := gen.DBLP(0.02, 33)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	keywords := ds.Correlated[0]
	run := func() string {
		tr := obs.NewTrace()
		rs := naive.EvaluateObs(idx.view().doc, idx.view().m, keywords, naive.ELCA, 0, tr)
		if len(rs) == 0 {
			t.Fatal("oracle found no results")
		}
		return tr.Signature()
	}
	sig1, sig2 := run(), run()
	if sig1 != sig2 {
		t.Fatalf("oracle trace not deterministic:\n%s\nvs\n%s", sig1, sig2)
	}
	for _, f := range []string{"list-open(", "join-order(full-scan:rows=", "note(naive nodes scanned"} {
		if !strings.Contains(sig1, f) {
			t.Errorf("signature missing %q:\n%s", f, sig1)
		}
	}
}

// TestTracedStreamAfterReload is the acceptance-criteria path: a traced
// TopKStream query over a loaded (on-disk) index must surface the star
// join's input-order decision, at least one threshold update, and nonzero
// column-decode counters in the store metrics.
func TestTracedStreamAfterReload(t *testing.T) {
	idx0, q := traceEnv(t)
	dir := t.TempDir()
	if err := idx0.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	qs, err := idx.TopKStreamTraced(context.Background(), q, 3, SearchOptions{}, func(r Result) bool {
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || qs.Results != len(got) {
		t.Fatalf("stream delivered %d, stats say %d", len(got), qs.Results)
	}
	var joinOrders, thresholds, decodes int
	for _, e := range qs.Trace.Events() {
		switch e.Kind {
		case obs.EvJoinOrder:
			joinOrders++
		case obs.EvThreshold:
			thresholds++
		case obs.EvDecode:
			decodes++
		}
	}
	if joinOrders == 0 {
		t.Error("trace has no join-order decision")
	}
	if thresholds == 0 {
		t.Error("trace has no threshold update")
	}
	if decodes == 0 {
		t.Error("trace has no decode event (on-disk lists must decode)")
	}
	store := idx.Stats().Store
	if store.ListOpens == 0 || store.BlocksDecoded == 0 || store.DecodedBytes == 0 {
		t.Errorf("store decode counters empty: %+v", store)
	}
}

// TestSnapshotDuringConcurrentQueries hammers the metrics snapshot while
// queries run on every engine; run under -race this is the data-race gate
// for the whole exposition path.
func TestSnapshotDuringConcurrentQueries(t *testing.T) {
	idx, q := traceEnv(t)
	algos := []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup, AlgoRDIL, AlgoHybrid}
	idx.SetSlowQueryThreshold(1) // capture everything: exercises the slow log too
	idx.view().ensureInv()       // warm the lazy baseline build before the storm

	var wg sync.WaitGroup
	const perWorker = 20
	for _, algo := range algos {
		wg.Add(1)
		go func(a Algorithm) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := idx.TopKContext(context.Background(), q, 3, SearchOptions{Algorithm: a}); err != nil {
					t.Errorf("algo %d: %v", a, err)
					return
				}
			}
		}(algo)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	var snaps int
	for {
		select {
		case <-done:
			snap := idx.Stats()
			var total int64
			for _, e := range snap.Engines {
				total += e.Queries
			}
			if want := int64(len(algos) * perWorker); total != want {
				t.Fatalf("recorded %d queries, want %d", total, want)
			}
			if len(snap.SlowQueries) == 0 {
				t.Error("slow log empty despite 1ns threshold")
			}
			var sb strings.Builder
			snap.WritePrometheus(&sb)
			if !strings.Contains(sb.String(), "xkw_queries_total") {
				t.Error("prometheus exposition missing counters")
			}
			t.Logf("%d snapshots taken concurrently", snaps)
			return
		default:
			_ = idx.Stats()
			snaps++
		}
	}
}
