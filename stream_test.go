package xmlsearch

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestTopKStream(t *testing.T) {
	ds := gen.DBLP(0.02, 21)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Join(ds.Correlated[0], " ")
	want, err := idx.TopK(q, 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var got []Result
	if err := idx.TopKStream(q, 10, SearchOptions{}, func(r Result) bool {
		got = append(got, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d: streamed %v, batch %v", i, got[i].Score, want[i].Score)
		}
	}
	// Emission is score-descending.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score+1e-9 {
			t.Fatalf("stream out of order at %d", i)
		}
	}
}

func TestTopKStreamCancel(t *testing.T) {
	ds := gen.DBLP(0.02, 21)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Join(ds.Correlated[0], " ")
	count := 0
	if err := idx.TopKStream(q, 10, SearchOptions{}, func(Result) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("callback ran %d times after cancel at 3", count)
	}
}

func TestTopKStreamErrors(t *testing.T) {
	idx, err := Open(strings.NewReader(`<r><a>x</a><b>y</b></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.TopKStream("x y", 0, SearchOptions{}, func(Result) bool { return true }); err == nil {
		t.Error("k=0 must error")
	}
	if err := idx.TopKStream("x y", 3, SearchOptions{}, nil); err == nil {
		t.Error("nil callback must error")
	}
	if err := idx.TopKStream("the", 3, SearchOptions{}, func(Result) bool { return true }); err == nil {
		t.Error("stopword-only query must error")
	}
	// A query with an absent keyword streams nothing but succeeds.
	calls := 0
	if err := idx.TopKStream("x zzznothere", 3, SearchOptions{}, func(Result) bool { calls++; return true }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Error("absent keyword must stream no results")
	}
}
