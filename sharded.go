package xmlsearch

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/jdewey"
	"repro/internal/obs"
	"repro/internal/occur"
	"repro/internal/qlog"
	"repro/internal/shard"
	"repro/internal/xmltree"
)

// Sharded is a searchable index partitioned into N independent shards,
// each a complete Index (own column store, snapshot, plan cache, and
// writer lock) over a contiguous run of the document's top-level
// subtrees. Queries scatter to every shard through a bounded worker pool
// and gather into one globally ranked answer; the coordinator's merge
// exchanges its running K-th score against each shard's result stream so
// shards whose remaining results provably cannot place are cancelled
// early (the §IV-C unseen-result bound driving the stop, see DESIGN.md
// §14). Mutations route to exactly one shard's writer, so writers on
// distinct shards run concurrently instead of serializing on one global
// lock.
//
// Like the synthetic corpus root of Corpus, each shard's root element is
// synthetic: results rooted at it (keyword co-occurrence only across a
// shard's documents — or, in the unsharded view, across the whole
// corpus) are filtered out, and the original root's own direct text is
// not indexed. A Sharded index therefore matches an unsharded oracle
// that drops root-level results — rank-for-rank, at any shard count.
type Sharded struct {
	// mu guards the routing state (counts and the offsets derived from
	// it): read-locked by queries and subtree-interior mutations,
	// write-locked by mutations that change the top-level child count
	// and by Save.
	mu sync.RWMutex
	// shards are the per-partition indexes, fixed at construction.
	shards []*Index
	// counts[i] is the number of top-level children shard i currently
	// owns; prefix sums give each shard's global child offset.
	counts []int

	pool    *shard.Pool
	metrics *obs.Metrics
	traces  atomic.Pointer[obs.TraceStore]
	qlog    atomic.Pointer[qlog.Recorder]
	pinned  atomic.Int64
}

// NewSharded partitions doc's top-level subtrees into n contiguous,
// node-count-balanced groups and builds one Index per group. n is
// clamped to [1, number of top-level children]. The document is consumed
// destructively (its children are re-parented into the shard trees) and
// must not be used afterwards.
//
// Scores are identical to the unsharded index's: the occurrence map is
// extracted once, globally — global corpus constant N and global
// per-term document frequencies baked into every occurrence score —
// and only then split by owning shard, so a result scores the same no
// matter how many shards serve it. (After a mutation, the touched
// terms' document frequencies are recomputed shard-locally — the same
// relaxed incremental-scoring contract the unsharded index applies to
// its frozen N; see DESIGN.md §14.)
func NewSharded(doc *xmltree.Document, n int, opts ...Option) (*Sharded, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("xmlsearch: empty document")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.elemRank {
		return nil, fmt.Errorf("xmlsearch: sharding does not support ElemRank: link ranks are a whole-tree property")
	}
	doc.Refresh()
	children := doc.Root.Children
	if len(children) == 0 {
		return nil, fmt.Errorf("xmlsearch: cannot shard a document with no top-level elements")
	}
	if n < 1 {
		n = 1
	}
	if n > len(children) {
		n = len(children)
	}

	// Extract globally before the tree is taken apart: every occurrence
	// score is computed against the whole corpus here.
	m := occur.Extract(doc)

	sizes := make([]int, len(children))
	for j, c := range children {
		sizes[j] = subtreeSize(c)
	}
	bounds := splitContiguous(sizes, n)

	owner := make(map[*xmltree.Node]int, doc.Len())
	for i := 0; i < n; i++ {
		for j := bounds[i]; j < bounds[i+1]; j++ {
			markOwner(children[j], i, owner)
		}
	}

	rootTag := doc.Root.Tag
	counts := make([]int, n)
	shardDocs := make([]*xmltree.Document, n)
	for i := 0; i < n; i++ {
		// The shard root copies the original root's tag (so Path strings
		// match the unsharded index) but not its text: the root's own
		// occurrences belong to no shard and root-level results are
		// filtered anyway.
		root := &xmltree.Node{Tag: rootTag}
		root.Children = append([]*xmltree.Node(nil), children[bounds[i]:bounds[i+1]]...)
		sd := &xmltree.Document{Root: root}
		sd.Refresh()
		shardDocs[i] = sd
		counts[i] = bounds[i+1] - bounds[i]
	}

	// Split each term's (globally scored, document-ordered) occurrence
	// list by owning shard; a contiguous partition preserves relative
	// order, so each piece is in its shard's document order. Occurrences
	// on the original root itself are dropped.
	terms := make([]map[string][]occur.Occ, n)
	for i := range terms {
		terms[i] = make(map[string][]occur.Occ)
	}
	for term, occs := range m.Terms {
		for _, o := range occs {
			si, ok := owner[o.Node]
			if !ok {
				continue
			}
			terms[si][term] = append(terms[si][term], o)
		}
	}

	shards := make([]*Index, n)
	for i := 0; i < n; i++ {
		sd := shardDocs[i]
		enc := jdewey.Assign(sd, 4)
		sm := &occur.Map{Terms: terms[i], N: m.N, Depth: sd.Depth}
		shards[i] = newIndex(sd, sm, colstore.Build(sm), enc, cfg)
	}
	return assembleSharded(shards, counts), nil
}

// assembleSharded wires the coordinator around ready shard indexes.
func assembleSharded(shards []*Index, counts []int) *Sharded {
	sh := &Sharded{
		shards:  shards,
		counts:  counts,
		pool:    shard.NewPool(runtime.GOMAXPROCS(0)),
		metrics: obs.NewMetrics(),
	}
	sh.metrics.SetGaugeSource(func() obs.Gauges {
		g := obs.Gauges{Shards: int64(len(sh.shards)), PinnedQueries: sh.pinned.Load()}
		for _, ix := range sh.shards {
			if gen := ix.gen.Load(); gen > g.SnapshotGen {
				g.SnapshotGen = gen
			}
			g.CacheLists += int64(ix.cache.Len())
			g.CacheBytes += ix.cache.Bytes()
			g.PlanCacheEntries += int64(ix.plans.Len())
		}
		return g
	})
	sh.metrics.SetShardSource(func() []obs.ShardGauge {
		out := make([]obs.ShardGauge, len(sh.shards))
		for i, ix := range sh.shards {
			out[i] = obs.ShardGauge{
				ID:               i,
				SnapshotGen:      ix.gen.Load(),
				PinnedQueries:    ix.pinned.Load(),
				PlanCacheEntries: int64(ix.plans.Len()),
			}
		}
		return out
	})
	return sh
}

// OpenSharded parses an XML document from r and builds an n-shard index.
func OpenSharded(r io.Reader, n int, opts ...Option) (*Sharded, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: %w", err)
	}
	return NewSharded(doc, n, opts...)
}

// OpenShardedFile opens and shards the XML document at path.
func OpenShardedFile(path string, n int, opts ...Option) (*Sharded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: %w", err)
	}
	defer f.Close()
	return OpenSharded(f, n, opts...)
}

// subtreeSize counts the nodes of the subtree rooted at n.
func subtreeSize(n *xmltree.Node) int {
	s := 1
	for _, c := range n.Children {
		s += subtreeSize(c)
	}
	return s
}

// markOwner assigns every node of the subtree rooted at n to shard si.
func markOwner(n *xmltree.Node, si int, owner map[*xmltree.Node]int) {
	owner[n] = si
	for _, c := range n.Children {
		markOwner(c, si, owner)
	}
}

// splitContiguous partitions len(sizes) items into n contiguous groups
// with roughly equal total size: it returns n+1 boundary indexes with
// bounds[0] = 0 and bounds[n] = len(sizes). Every group gets at least
// one item (n <= len(sizes) is the caller's contract).
func splitContiguous(sizes []int, n int) []int {
	bounds := make([]int, n+1)
	remaining := 0
	for _, s := range sizes {
		remaining += s
	}
	j := 0
	for i := 0; i < n; i++ {
		bounds[i] = j
		shardsLeft := n - i
		target := (remaining + shardsLeft - 1) / shardsLeft
		acc := 0
		for j < len(sizes) {
			took := j - bounds[i]
			if took > 0 && len(sizes)-j <= shardsLeft-1 {
				break
			}
			if took > 0 && acc >= target {
				break
			}
			acc += sizes[j]
			j++
		}
		remaining -= acc
	}
	bounds[n] = len(sizes)
	return bounds
}

// offsets returns, per shard, the global index of its first top-level
// child (a prefix sum over counts), plus the total child count. Callers
// hold sh.mu.
func (sh *Sharded) offsetsLocked() ([]int, int) {
	offs := make([]int, len(sh.counts))
	total := 0
	for i, c := range sh.counts {
		offs[i] = total
		total += c
	}
	return offs, total
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Len returns the number of element nodes indexed across every shard,
// counting the (replicated synthetic) root once — the size of the
// original document.
func (sh *Sharded) Len() int {
	n := 1
	for _, ix := range sh.shards {
		n += ix.Len() - 1
	}
	return n
}

// Depth returns the maximum tree depth across shards.
func (sh *Sharded) Depth() int {
	d := 0
	for _, ix := range sh.shards {
		if sd := ix.Depth(); sd > d {
			d = sd
		}
	}
	return d
}

// ShardInfo is one row of a sharded index's introspection report.
type ShardInfo struct {
	ID int `json:"id"`
	// Docs is the number of top-level subtrees the shard currently owns.
	Docs int `json:"docs"`
	// Nodes is the shard's element count (its synthetic root included).
	Nodes int `json:"nodes"`
	// Generation is the shard's published snapshot generation.
	Generation int64 `json:"generation"`
	// PlanCacheEntries is the shard's plan-cache occupancy.
	PlanCacheEntries int `json:"plan_cache_entries"`
}

// ShardInfo reports each shard's current shape — the `shards=`
// introspection surface of xkwserve.
func (sh *Sharded) ShardInfo() []ShardInfo {
	sh.mu.RLock()
	counts := append([]int(nil), sh.counts...)
	sh.mu.RUnlock()
	out := make([]ShardInfo, len(sh.shards))
	for i, ix := range sh.shards {
		out[i] = ShardInfo{
			ID:               i,
			Docs:             counts[i],
			Nodes:            ix.Len(),
			Generation:       ix.gen.Load(),
			PlanCacheEntries: ix.plans.Len(),
		}
	}
	return out
}

// Health merges every shard's degradation report; file damage is
// prefixed with the shard it belongs to.
func (sh *Sharded) Health() Health {
	var h Health
	for i, ix := range sh.shards {
		hs := ix.Health()
		if i == 0 {
			h.Format = hs.Format
		}
		h.Terms += hs.Terms
		h.Quarantined = append(h.Quarantined, hs.Quarantined...)
		for _, f := range hs.FileDamage {
			h.FileDamage = append(h.FileDamage, fmt.Sprintf("%s: %s", shardDirName(i), f))
		}
	}
	return h
}

// Metrics returns the coordinator's live metrics registry: scatter-
// gather counters, coordinator-level query metrics, and gauges
// aggregated across shards (plus per-shard gauge rows). Per-shard engine
// metrics accumulate in each shard's own registry.
func (sh *Sharded) Metrics() *obs.Metrics { return sh.metrics }

// Stats snapshots the coordinator metrics registry.
func (sh *Sharded) Stats() obs.Snapshot { return sh.metrics.Snapshot() }

// SetSlowQueryThreshold arms the slow-query log, coordinator and shards.
func (sh *Sharded) SetSlowQueryThreshold(d time.Duration) {
	sh.metrics.SetSlowQueryThreshold(d)
	for _, ix := range sh.shards {
		ix.SetSlowQueryThreshold(d)
	}
}

// SlowQueries returns the coordinator's retained slow queries.
func (sh *Sharded) SlowQueries() []obs.SlowQuery { return sh.metrics.SlowQueries() }

// SetTraceStore installs the tail-sampling trace store on the
// coordinator (nil disables capture).
func (sh *Sharded) SetTraceStore(ts *obs.TraceStore) { sh.traces.Store(ts) }

// TraceStore returns the installed trace store, or nil.
func (sh *Sharded) TraceStore() *obs.TraceStore { return sh.traces.Load() }

// SetQueryLog installs the query flight recorder on the coordinator:
// one record per scatter-gather query, carrying the merged fingerprint
// and the shard fan-out count. Shards do not record individually, so a
// captured workload is shard-count-invariant.
func (sh *Sharded) SetQueryLog(r *qlog.Recorder) {
	if r != nil {
		r.SetObs(&sh.metrics.QLog)
	}
	sh.qlog.Store(r)
}

// QueryLog returns the installed recorder, or nil.
func (sh *Sharded) QueryLog() *qlog.Recorder { return sh.qlog.Load() }

// SetPlanCacheCapacity rebounds every shard's plan cache.
func (sh *Sharded) SetPlanCacheCapacity(n int) {
	for _, ix := range sh.shards {
		ix.SetPlanCacheCapacity(n)
	}
}

// PublishExpvar publishes the coordinator metrics under the given
// expvar name.
func (sh *Sharded) PublishExpvar(name string) { sh.metrics.PublishExpvar(name) }
