// Command xkwstats prints the structural and lexical statistics of an XML
// corpus that the paper's cost models depend on: node counts by depth and
// tag, the keyword-frequency distribution the Figure 9 bands are drawn
// from, and the column/run shape of the JDewey inverted lists.
//
// Usage:
//
//	xkwstats -xml corpus.xml
//	xkwstats -dataset dblp -scale 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/colstore"
	"repro/internal/gen"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/xmltree"
)

func main() {
	var (
		xmlPath = flag.String("xml", "", "XML document to analyze")
		dataset = flag.String("dataset", "", "or: generate dblp|xmark")
		scale   = flag.Float64("scale", 0.1, "generator scale")
		seed    = flag.Int64("seed", 1, "generator seed")
		topTags = flag.Int("tags", 10, "tag rows to print")
	)
	flag.Parse()

	var doc *xmltree.Document
	switch {
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			fatal(err)
		}
		doc, err = xmltree.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *dataset == "dblp":
		doc = gen.DBLP(*scale, *seed).Doc
	case *dataset == "xmark":
		doc = gen.XMark(*scale, *seed).Doc
	default:
		fmt.Fprintln(os.Stderr, "xkwstats: need -xml FILE or -dataset dblp|xmark")
		os.Exit(2)
	}
	jdewey.Assign(doc, 0)
	m := occur.Extract(doc)

	fmt.Printf("nodes: %d   depth: %d   distinct terms: %d\n\n", doc.Len(), doc.Depth, len(m.Terms))

	fmt.Println("nodes per level:")
	for l := 1; l <= doc.Depth; l++ {
		fmt.Printf("  level %2d: %8d\n", l, len(doc.NodesAtLevel(l)))
	}

	tagCount := map[string]int{}
	for _, n := range doc.Nodes {
		tagCount[n.Tag]++
	}
	type tc struct {
		tag string
		n   int
	}
	var tags []tc
	for tag, n := range tagCount {
		tags = append(tags, tc{tag, n})
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].n > tags[j].n })
	fmt.Printf("\ntop %d tags:\n", *topTags)
	for i, t := range tags {
		if i >= *topTags {
			break
		}
		fmt.Printf("  %-20s %8d\n", t.tag, t.n)
	}

	// Keyword-frequency distribution: the raw material of the Figure 9 bands.
	var dfs []int
	totalOcc := 0
	for _, occs := range m.Terms {
		dfs = append(dfs, len(occs))
		totalOcc += len(occs)
	}
	sort.Ints(dfs)
	pct := func(p float64) int {
		if len(dfs) == 0 {
			return 0
		}
		i := int(p * float64(len(dfs)-1))
		return dfs[i]
	}
	fmt.Printf("\nkeyword document frequencies (%d occurrences total):\n", totalOcc)
	fmt.Printf("  p50=%d p90=%d p99=%d p999=%d max=%d\n", pct(0.50), pct(0.90), pct(0.99), pct(0.999), dfs[len(dfs)-1])

	// Column shape of the JDewey lists: run collapse per level, the input
	// to the compression-scheme choice of Section III-D.
	entries := make([]int, doc.Depth+1)
	runs := make([]int, doc.Depth+1)
	for term, occs := range m.Terms {
		l := colstore.BuildList(term, occs)
		for ci := range l.Cols {
			entries[ci+1] += l.Cols[ci].NumEntries()
			runs[ci+1] += len(l.Cols[ci].Runs)
		}
	}
	fmt.Println("\nJDewey column shape (entries -> runs after grouping):")
	for l := 1; l <= doc.Depth; l++ {
		if entries[l] == 0 {
			continue
		}
		fmt.Printf("  level %2d: %9d -> %9d (%.1fx)\n", l, entries[l], runs[l], float64(entries[l])/float64(runs[l]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkwstats:", err)
	os.Exit(1)
}
