// Command xkwgen generates the synthetic DBLP and XMark corpora used by the
// experiments, writing them as XML.
//
// Usage:
//
//	xkwgen -dataset dblp -scale 0.1 -seed 1 -o dblp.xml
//	xkwgen -dataset xmark -scale 1.0 -o xmark.xml -meta
//
// With -meta, the planted frequency-band terms and correlated queries are
// printed to stderr so scripted experiments can pick keywords.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	var (
		dataset = flag.String("dataset", "dblp", "corpus to generate: dblp or xmark")
		scale   = flag.Float64("scale", 0.1, "linear size factor (1.0 ≈ 20k papers / 60k auction nodes)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		meta    = flag.Bool("meta", false, "print planted band terms and correlated queries to stderr")
	)
	flag.Parse()

	var ds *gen.Dataset
	switch *dataset {
	case "dblp":
		ds = gen.DBLP(*scale, *seed)
	case "xmark":
		ds = gen.XMark(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "xkwgen: unknown dataset %q (want dblp or xmark)\n", *dataset)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xkwgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := ds.Doc.WriteXML(w); err != nil {
		fmt.Fprintf(os.Stderr, "xkwgen: write: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "xkwgen: flush: %v\n", err)
		os.Exit(1)
	}

	if *meta {
		fmt.Fprintf(os.Stderr, "dataset=%s nodes=%d depth=%d\n", ds.Name, ds.Doc.Len(), ds.Doc.Depth)
		fmt.Fprintf(os.Stderr, "high-frequency terms (df=%d): %v\n", ds.HighDF, ds.HighTerms)
		for _, b := range ds.BandValues {
			fmt.Fprintf(os.Stderr, "band df=%d: %v\n", b, ds.Bands[b])
		}
		for _, q := range ds.Correlated {
			fmt.Fprintf(os.Stderr, "correlated query: %v\n", q)
		}
	}
}
