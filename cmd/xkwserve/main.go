// Command xkwserve loads an index and serves it over HTTP together with
// its full operational plane: Prometheus metrics, liveness/readiness
// probes backed by storage self-verification, the slow-query log, a
// bounded tail-sampled trace store, Go runtime profiles, and a traced
// /search endpoint.
//
// Usage:
//
//	xkwserve (-index DIR | -xml FILE) [-shards N] [-addr :8080]
//	         [-slow 50ms] [-trace-keep 256] [-trace-sample 64] [-trace-seed 1]
//	         [-trace-max-spans 4096]
//	         [-mutexfrac N] [-blockrate N]
//	         [-max-inflight 256] [-queue 64] [-default-timeout 0] [-drain 5s]
//	         [-qlog DIR] [-qlog-max-bytes N] [-qlog-max-files N]
//
// Flight recorder: with -qlog DIR every query — completed, partial,
// aborted, shed — appends one NDJSON record (keywords, plan, outcome,
// latency, resource profile, result-set fingerprint) to DIR/qlog.ndjson,
// rotating past -qlog-max-bytes and keeping -qlog-max-files rotations.
// The recent ring serves at GET /qlog; captured files replay through
// `xkwbench -exp replay`. Recording is lossy-bounded: it never blocks a
// query, and drops (if any) are counted in xkw_qlog_dropped_total.
//
// Trace capture policy: every query through /search is traced; traces of
// queries that erred, were cancelled, or ran at or above -slow are always
// retained (up to -trace-keep, oldest evicted), the rest pass through a
// -trace-sample sized reservoir. -slow 0 retains every trace — useful in
// development, unbounded only by -trace-keep.
//
// Overload policy: at most -max-inflight queries execute concurrently,
// up to -queue more wait for a slot, and the rest are shed with 503 and
// Retry-After. -default-timeout caps every query that does not carry its
// own ?timeout=. On SIGTERM/SIGINT the server drains: /readyz flips to
// 503 immediately, new queries shed, and in-flight queries get -drain to
// finish (or settle as certified-partial with ?partial=1) before the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	xmlsearch "repro"
	"repro/internal/obs"
	"repro/internal/obshttp"
	"repro/internal/qlog"
)

func main() {
	fs := flag.NewFlagSet("xkwserve", flag.ExitOnError)
	indexDir := fs.String("index", "", "saved index directory")
	xmlPath := fs.String("xml", "", "XML document to index on the fly")
	shards := fs.Int("shards", 1, "partition the corpus into N shards with scatter-gather top-K (with -xml; saved sharded indexes are auto-detected)")
	addr := fs.String("addr", ":8080", "listen address")
	slow := fs.Duration("slow", 50*time.Millisecond, "slow-query threshold for the slow log and trace retention (0 retains every trace)")
	traceKeep := fs.Int("trace-keep", obs.DefaultKeepTraces, "capacity of the slow/error/cancelled trace ring")
	traceSample := fs.Int("trace-sample", obs.DefaultSampleTraces, "reservoir capacity for ordinary traces")
	traceSeed := fs.Int64("trace-seed", 1, "reservoir sampling seed")
	traceMaxSpans := fs.Int("trace-max-spans", obs.DefaultMaxSpans, "per-trace span retention cap; a stitched scatter past it tail-truncates and counts drops (0 = library default)")
	mutexFrac := fs.Int("mutexfrac", 0, "mutex profile fraction (0 = off)")
	blockRate := fs.Int("blockrate", 0, "block profile rate in ns (0 = off)")
	planCache := fs.Int("plancache", 0, "query-plan cache capacity for engine=auto (0 = default)")
	maxInflight := fs.Int("max-inflight", 256, "maximum concurrently executing queries (0 = unlimited)")
	queueLen := fs.Int("queue", 64, "admission wait-queue length beyond max-inflight")
	defaultTimeout := fs.Duration("default-timeout", 0, "deadline applied to queries without an explicit ?timeout= (0 = none)")
	drainGrace := fs.Duration("drain", 5*time.Second, "grace period for in-flight queries during shutdown")
	qlogDir := fs.String("qlog", "", "enable the query flight recorder, sinking NDJSON records under this directory (empty = off)")
	qlogMaxBytes := fs.Int64("qlog-max-bytes", qlog.DefaultMaxFileBytes, "rotate the qlog sink past this size")
	qlogMaxFiles := fs.Int("qlog-max-files", qlog.DefaultMaxFiles, "rotated qlog files kept before pruning")
	fs.Parse(os.Args[1:])
	if (*indexDir == "") == (*xmlPath == "") {
		fmt.Fprintln(os.Stderr, "usage: xkwserve (-index DIR | -xml FILE) [-shards N] [-addr :8080] [-slow DUR] [-trace-keep N] [-trace-sample N] [-trace-seed N] [-mutexfrac N] [-blockrate N] [-plancache N] [-max-inflight N] [-queue N] [-default-timeout DUR] [-drain DUR] [-qlog DIR]")
		os.Exit(2)
	}

	start := time.Now()
	var (
		ix  server
		err error
	)
	switch {
	case *indexDir != "" && xmlsearch.IsShardedDir(*indexDir):
		ix, err = xmlsearch.LoadSharded(*indexDir)
	case *indexDir != "":
		ix, err = xmlsearch.Load(*indexDir)
	case *shards > 1:
		ix, err = xmlsearch.OpenShardedFile(*xmlPath, *shards)
	default:
		ix, err = xmlsearch.OpenFile(*xmlPath)
	}
	if err != nil {
		fatal(err)
	}
	if sh, ok := ix.(*xmlsearch.Sharded); ok {
		fmt.Printf("xkwserve: loaded %d nodes (depth %d) across %d shards in %v\n",
			sh.Len(), sh.Depth(), sh.Shards(), time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("xkwserve: loaded %d nodes (depth %d) in %v\n", ix.Len(), ix.Depth(), time.Since(start).Round(time.Millisecond))
	}
	if h := ix.Health(); h.Degraded() {
		fmt.Printf("xkwserve: WARNING: degraded index: %d quarantined term(s), %d damaged file(s)\n", len(h.Quarantined), len(h.FileDamage))
	}

	ix.SetSlowQueryThreshold(*slow)
	ts := obs.NewTraceStore(*traceKeep, *traceSample, *slow, *traceSeed)
	ts.SetMaxSpans(*traceMaxSpans)
	ix.SetTraceStore(ts)
	if *planCache > 0 {
		ix.SetPlanCacheCapacity(*planCache)
	}
	var recorder *qlog.Recorder
	if *qlogDir != "" {
		recorder, err = qlog.New(qlog.Options{Dir: *qlogDir, MaxFileBytes: *qlogMaxBytes, MaxFiles: *qlogMaxFiles})
		if err != nil {
			fatal(err)
		}
		ix.SetQueryLog(recorder)
		fmt.Printf("xkwserve: query flight recorder on, sinking to %s\n", *qlogDir)
	}

	h := obshttp.NewHandler(ix, obshttp.Options{
		MutexProfileFraction: *mutexFrac,
		BlockProfileRate:     *blockRate,
		MaxInflight:          *maxInflight,
		QueueLen:             *queueLen,
		DefaultTimeout:       *defaultTimeout,
	})
	srv := &http.Server{Addr: *addr, Handler: h}
	go func() {
		fmt.Printf("xkwserve: listening on %s\n", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nxkwserve: draining")
	// Drain order matters: flip readiness and start shedding first, so load
	// balancers stop routing here, then close the listener while in-flight
	// queries run out the grace period (plus slack for response writes).
	h.StartDrain(*drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace+2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	// Close the recorder last: every drained query has offered its record
	// by now, and Close flushes the queue into the sink before exiting.
	if err := recorder.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "xkwserve: qlog close:", err)
	}
	fmt.Println("xkwserve: drained, exiting")
}

// server is the facade slice xkwserve needs beyond obshttp.Server —
// load-time reporting and the observability setters — satisfied by both
// *xmlsearch.Index and *xmlsearch.Sharded.
type server interface {
	obshttp.Server
	Len() int
	Depth() int
	SetSlowQueryThreshold(time.Duration)
	SetTraceStore(*obs.TraceStore)
	SetPlanCacheCapacity(int)
	SetQueryLog(*qlog.Recorder)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkwserve:", err)
	os.Exit(1)
}
