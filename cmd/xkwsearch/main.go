// Command xkwsearch indexes an XML document and runs keyword queries over
// it with any of the implemented engines.
//
// Usage:
//
//	xkwsearch index -xml corpus.xml -out ./idx
//	xkwsearch query -index ./idx -k 10 -sem elca -algo join "sensor network"
//	xkwsearch query -xml corpus.xml "xml keyword search"
//
// The query subcommand accepts either a saved index directory (-index) or a
// raw XML file (-xml, indexed on the fly).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	xmlsearch "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		runIndex(os.Args[2:])
	case "query":
		runQuery(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xkwsearch index -xml FILE -out DIR
  xkwsearch query (-index DIR | -xml FILE) [-k N] [-sem elca|slca] [-algo join|stack|ixlookup|rdil|hybrid|auto]
                  [-plan] [-stream] [-explain] [-trace] [-trace-out FILE] [-metrics] [-slow DUR] QUERY...`)
	os.Exit(2)
}

func runIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	xmlPath := fs.String("xml", "", "XML document to index")
	out := fs.String("out", "", "output index directory")
	fs.Parse(args)
	if *xmlPath == "" || *out == "" {
		usage()
	}
	start := time.Now()
	idx, err := xmlsearch.OpenFile(*xmlPath)
	if err != nil {
		fatal(err)
	}
	if err := idx.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d nodes (depth %d) in %v -> %s\n", idx.Len(), idx.Depth(), time.Since(start).Round(time.Millisecond), *out)
}

func runQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	indexDir := fs.String("index", "", "saved index directory")
	xmlPath := fs.String("xml", "", "XML document to index on the fly")
	k := fs.Int("k", 10, "number of results (0 = all)")
	semName := fs.String("sem", "elca", "semantics: elca or slca")
	algoName := fs.String("algo", "join", "engine: join, stack, ixlookup, rdil, hybrid, or auto (cost-based)")
	plan := fs.Bool("plan", false, "print the query plan (chosen engine, cost estimates) before the results")
	stream := fs.Bool("stream", false, "print top-K results as they are proven (join engine)")
	explain := fs.Bool("explain", false, "print the execution profile after the results")
	trace := fs.Bool("trace", false, "print the per-query execution trace after the results")
	traceOut := fs.String("trace-out", "", "write the query's full execution profile (span tree + events) as JSON to this file (implies tracing)")
	metrics := fs.Bool("metrics", false, "print the engine metrics (Prometheus text + JSON) after the query")
	slow := fs.Duration("slow", 0, "log queries at or above this latency (printed with -metrics)")
	fs.Parse(args)
	query := strings.Join(fs.Args(), " ")
	if query == "" || (*indexDir == "") == (*xmlPath == "") {
		usage()
	}
	traced := *trace || *traceOut != ""

	var (
		idx *xmlsearch.Index
		err error
	)
	if *indexDir != "" {
		idx, err = xmlsearch.Load(*indexDir)
	} else {
		idx, err = xmlsearch.OpenFile(*xmlPath)
	}
	if err != nil {
		fatal(err)
	}

	opt := xmlsearch.SearchOptions{}
	switch *semName {
	case "elca":
		opt.Semantics = xmlsearch.ELCA
	case "slca":
		opt.Semantics = xmlsearch.SLCA
	default:
		fatal(fmt.Errorf("unknown semantics %q", *semName))
	}
	switch *algoName {
	case "join":
		opt.Algorithm = xmlsearch.AlgoJoin
	case "stack":
		opt.Algorithm = xmlsearch.AlgoStack
	case "ixlookup":
		opt.Algorithm = xmlsearch.AlgoIndexLookup
	case "rdil":
		opt.Algorithm = xmlsearch.AlgoRDIL
	case "hybrid":
		opt.Algorithm = xmlsearch.AlgoHybrid
	case "auto":
		opt.Algorithm = xmlsearch.AlgoAuto
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	if *slow > 0 {
		idx.SetSlowQueryThreshold(*slow)
	}

	if *plan {
		p, err := idx.Plan(query, *k, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(p)
	}

	var qs *xmlsearch.QueryStats
	if *stream {
		if *k <= 0 {
			fatal(fmt.Errorf("-stream needs -k > 0"))
		}
		start := time.Now()
		rank := 0
		emit := func(r xmlsearch.Result) bool {
			rank++
			fmt.Printf("%2d. (+%v) score=%.4f  %-24s %s\n", rank, time.Since(start).Round(time.Microsecond), r.Score, r.Dewey, r.Path)
			return true
		}
		if traced {
			qs, err = idx.TopKStreamTraced(context.Background(), query, *k, opt, emit)
		} else {
			err = idx.TopKStream(query, *k, opt, emit)
		}
		if err != nil {
			fatal(err)
		}
	} else {
		start := time.Now()
		var results []xmlsearch.Result
		switch {
		case traced && *k > 0:
			results, qs, err = idx.TopKTraced(context.Background(), query, *k, opt)
		case traced:
			results, qs, err = idx.SearchTraced(context.Background(), query, opt)
		case *k > 0:
			results, err = idx.TopK(query, *k, opt)
		default:
			results, err = idx.Search(query, opt)
		}
		elapsed := time.Since(start)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d result(s) in %v for %v [%s/%s]\n", len(results), elapsed.Round(time.Microsecond), xmlsearch.Keywords(query), *semName, *algoName)
		for i, r := range results {
			fmt.Printf("%2d. score=%.4f  %-24s %s\n", i+1, r.Score, r.Dewey, r.Path)
			if r.Snippet != "" {
				fmt.Printf("    %s\n", r.Snippet)
			}
		}
		if *explain && (opt.Algorithm == xmlsearch.AlgoJoin || opt.Algorithm == xmlsearch.AlgoAuto) {
			ex, err := idx.Explain(query, *k, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Println(ex)
		}
	}
	if qs != nil && *trace {
		fmt.Printf("\n--- trace: engine=%s elapsed=%v events=%d ---\n", qs.Engine, qs.Elapsed.Round(time.Microsecond), len(qs.Trace.Events()))
		qs.RenderTrace(os.Stdout)
	}
	if qs != nil && *traceOut != "" {
		data, err := json.MarshalIndent(qs, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *metrics {
		snap := idx.Stats()
		fmt.Println("\n--- metrics (prometheus) ---")
		snap.WritePrometheus(os.Stdout)
		fmt.Println("\n--- metrics (json) ---")
		snap.WriteJSON(os.Stdout)
		fmt.Println()
		if *slow > 0 {
			sq := idx.SlowQueries()
			fmt.Printf("\n--- slow queries (>= %v, %d captured) ---\n", *slow, len(sq))
			for _, q := range sq {
				fmt.Printf("%-9s k=%-3d %-8v results=%-5d %q\n", q.Engine, q.K, q.Elapsed.Round(time.Microsecond), q.Results, q.Query)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkwsearch:", err)
	os.Exit(1)
}
