// Command xkwbench regenerates the paper's evaluation section: Table I,
// Figures 9 and 10, and the design-choice ablations, over the synthetic
// DBLP and XMark corpora.
//
// Usage:
//
//	xkwbench                      # default sweep (scale 0.25, 8 queries/pt)
//	xkwbench -full                # the paper's protocol (40 queries x 5 runs, scale 1.0)
//	xkwbench -exp fig9 -scale 0.5 # one experiment at a chosen scale
//	xkwbench -metrics -slow 5ms   # append engine metrics + slow-query log
//	xkwbench -writers 4           # query latency under concurrent mutation
//	xkwbench -o results.txt
//
// Machine-readable telemetry and the CI perf gate:
//
//	xkwbench -exp smoke -json BENCH_smoke.json
//	xkwbench -exp smoke -json BENCH_smoke.json -baseline results/BENCH_smoke.json -tol 3.0
//	xkwbench -exp overload -json BENCH_overload.json
//	xkwbench -exp shard -json BENCH_shard.json -baseline results/BENCH_shard.json -tol 3.0
//	xkwbench -exp attribution -json BENCH_attribution.json -baseline results/BENCH_attribution.json -tol 0.5
//	xkwbench -exp ingest -json BENCH_ingest.json -baseline results/BENCH_ingest.json -tol 3.0
//
// Workload capture and replay (the flight-recorder pipeline):
//
//	xkwbench -exp capture -workload w.ndjson [-qlog-dir dir]
//	xkwbench -exp replay  -workload w.ndjson -json BENCH_replay.json [-paced]
//
// -exp capture drives a deterministic mixed workload (complete, top-K,
// streaming, budget-tripped, partial, and deadline-expired queries)
// through the public facade with the flight recorder installed and
// writes the captured records to -workload. -exp replay re-executes a
// workload file — this capture, a /qlog scrape, or a rotated production
// sink — against a freshly built index of the same -scale/-seed and
// exits nonzero unless every recorded-ok query reproduces its result-set
// fingerprint exactly. -paced replays on the captured arrival schedule
// instead of closed-loop.
//
// -exp smoke measures every engine on the mid-band workload against a
// disk-backed store and writes per-engine p50/p95/p99, throughput, and
// decode volume (plus the machine fingerprint) to -json. With -baseline,
// the run exits nonzero when any point's p50 regresses beyond -tol
// (fractional; 3.0 = 4x slower) against the committed baseline.
//
// -exp overload hammers the HTTP serving stack (admission control
// included) at twice its in-flight capacity and reports the shed rate,
// certified-partial rate, and admitted-query latency — the degradation
// behavior rather than raw engine speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		full     = flag.Bool("full", false, "run the paper-scale protocol (slower)")
		scale    = flag.Float64("scale", 0, "override dataset scale factor")
		seed     = flag.Int64("seed", 1, "workload seed")
		queries  = flag.Int("queries", 0, "override queries per sweep point")
		reps     = flag.Int("reps", 0, "override repetitions per query")
		topK     = flag.Int("k", 10, "K for the top-K experiments")
		exp      = flag.String("exp", "all", "experiment: all, table1, fig9, fig10, ablations, smoke, overload, shard, ingest, attribution, capture, replay")
		workload = flag.String("workload", "", "with -exp capture/replay, the NDJSON workload file to write/read")
		paced    = flag.Bool("paced", false, "with -exp replay, pace the replay by the recorded inter-arrival offsets")
		qlogDir  = flag.String("qlog-dir", "", "with -exp capture, also sink the capture through a rotating on-disk qlog in this directory")
		out      = flag.String("o", "", "also write output to this file")
		jsonOut  = flag.String("json", "", "with -exp smoke or overload, write the telemetry report to this file")
		baseline = flag.String("baseline", "", "with -exp smoke, gate the run against this baseline report")
		tol      = flag.Float64("tol", 0.25, "fractional p50 regression tolerance for -baseline (0.25 = 25%)")
		metrics  = flag.Bool("metrics", false, "append per-engine metrics (Prometheus text + JSON) after the sweep")
		slow     = flag.Duration("slow", 0, "with -metrics, log queries at or above this latency")
		writers  = flag.Int("writers", 0, "run the concurrent-serving experiment with this many writer goroutines")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *full {
		cfg = bench.FullConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.QueriesPerPt = *queries
	}
	if *reps > 0 {
		cfg.RepsPerQuery = *reps
	}
	cfg.Seed = *seed
	cfg.TopK = *topK

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *writers > 0 {
		// The concurrent-serving experiment runs the whole library stack
		// (snapshot-isolated Index, not the per-engine harness), so it is
		// its own mode rather than a member of the sweep table.
		if err := concurrentServing(w, cfg.Scale, cfg.Seed, *writers, cfg.TopK); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "smoke" {
		if err := runSmoke(w, cfg, *jsonOut, *baseline, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "overload" {
		if err := runOverload(w, cfg, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "shard" {
		if err := runShard(w, cfg, *jsonOut, *baseline, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "ingest" {
		if err := runIngest(w, cfg, *jsonOut, *baseline, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "attribution" {
		if err := runAttribution(w, cfg, *jsonOut, *baseline, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "capture" {
		if err := runCapture(w, cfg, *workload, *qlogDir); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "replay" {
		if err := runReplay(w, cfg, *workload, *paced, *jsonOut, *baseline, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		return
	}

	dblp := bench.NewDBLPEnv(cfg.Scale, cfg.Seed)
	var xmark *bench.Env
	needXMark := *exp == "all" || *exp == "table1" || *exp == "ablations"
	if needXMark {
		xmark = bench.NewXMarkEnv(cfg.Scale, cfg.Seed)
	}
	if *slow > 0 {
		dblp.Obs.SetSlowQueryThreshold(*slow)
		if xmark != nil {
			xmark.Obs.SetSlowQueryThreshold(*slow)
		}
	}

	switch *exp {
	case "all":
		bench.RunAllEnvs(w, cfg, dblp, xmark)
	case "table1":
		bench.Table1(w, dblp, xmark)
	case "fig9":
		bench.Figure9(w, dblp, cfg)
	case "fig10":
		bench.Figure10(w, dblp, cfg)
	case "ablations":
		bench.AblationThreshold(w, dblp, cfg)
		bench.AblationJoinPlan(w, dblp, cfg)
		bench.AblationCompression(w, dblp, xmark)
	default:
		fmt.Fprintf(os.Stderr, "xkwbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *metrics {
		dumpMetrics(w, "dblp", dblp)
		if xmark != nil {
			dumpMetrics(w, "xmark", xmark)
		}
	}
}

// runSmoke measures the telemetry smoke sweep, writes the JSON report,
// and — when a baseline is given — gates the run against it, exiting
// through an error listing every regressed point.
func runSmoke(w io.Writer, cfg bench.Config, jsonOut, baseline string, tol float64) error {
	dir, err := os.MkdirTemp("", "xkwbench-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	report, err := bench.Smoke(cfg, dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== telemetry smoke: scale=%.2f queries/pt=%d reps=%d K=%d (%s/%s, %d CPU, %s) ==\n",
		cfg.Scale, cfg.QueriesPerPt, cfg.RepsPerQuery, cfg.TopK,
		report.Env.GOOS, report.Env.GOARCH, report.Env.NumCPU, report.Env.GoVersion)
	fmt.Fprintf(w, "%-10s %-14s %12s %12s %12s %10s %12s\n", "engine", "workload", "p50", "p95", "p99", "qps", "decoded")
	for _, p := range report.Points {
		fmt.Fprintf(w, "%-10s %-14s %12v %12v %12v %10.0f %12d\n",
			p.Engine, p.Label, time.Duration(p.P50Ns), time.Duration(p.P95Ns), time.Duration(p.P99Ns), p.QPS, p.DecodedBytes)
	}
	fmt.Fprintf(w, "plan-cache hit ratio (prepared AlgoAuto, 3 passes): %.2f\n", report.PlanCacheHitRatio)
	if jsonOut != "" {
		if err := bench.WriteReport(jsonOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", jsonOut)
	}
	if baseline != "" {
		base, err := bench.ReadReport(baseline)
		if err != nil {
			return err
		}
		if v := bench.CompareReports(base, report, tol); len(v) > 0 {
			for _, line := range v {
				fmt.Fprintln(os.Stderr, "REGRESSION:", line)
			}
			return fmt.Errorf("%d point(s) regressed beyond %.0f%% vs %s", len(v), tol*100, baseline)
		}
		fmt.Fprintf(w, "perf gate passed: no p50 regression beyond %.0f%% vs %s\n", tol*100, baseline)
	}
	return nil
}

// runOverload measures the serving stack's degradation behavior at 2x
// admission capacity and writes the JSON report.
func runOverload(w io.Writer, cfg bench.Config, jsonOut string) error {
	report, err := bench.Overload(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== overload: scale=%.2f queries/pt=%d reps=%d K=%d (%s/%s, %d CPU, %s) ==\n",
		cfg.Scale, cfg.QueriesPerPt, cfg.RepsPerQuery, cfg.TopK,
		report.Env.GOOS, report.Env.GOARCH, report.Env.NumCPU, report.Env.GoVersion)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %10s\n", "phase", "p50", "p95", "p99", "qps")
	for _, p := range report.Points {
		fmt.Fprintf(w, "%-14s %12v %12v %12v %10.0f\n",
			p.Label, time.Duration(p.P50Ns), time.Duration(p.P95Ns), time.Duration(p.P99Ns), p.QPS)
	}
	fmt.Fprintf(w, "shed rate: %.2f  partial rate: %.2f  admission rejected: %d\n",
		report.ShedRate, report.PartialRate, report.AdmissionRejected)
	if jsonOut != "" {
		if err := bench.WriteReport(jsonOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", jsonOut)
	}
	return nil
}

// runShard measures the multi-core shard scaling sweep — scatter-gather
// top-K latency and aggregate writer throughput at shards=1 vs
// shards=4 — writes the JSON report, and optionally gates against a
// committed baseline.
func runShard(w io.Writer, cfg bench.Config, jsonOut, baseline string, tol float64) error {
	report, err := bench.ShardScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== shard scaling: scale=%.2f queries/pt=%d reps=%d K=%d (%s/%s, %d CPU, %s) ==\n",
		cfg.Scale, cfg.QueriesPerPt, cfg.RepsPerQuery, cfg.TopK,
		report.Env.GOOS, report.Env.GOARCH, report.Env.NumCPU, report.Env.GoVersion)
	fmt.Fprintf(w, "%-10s %-12s %12s %12s %12s %10s\n", "engine", "workload", "p50", "p95", "p99", "qps")
	for _, p := range report.Points {
		fmt.Fprintf(w, "%-10s %-12s %12v %12v %12v %10.0f\n",
			p.Engine, p.Label, time.Duration(p.P50Ns), time.Duration(p.P95Ns), time.Duration(p.P99Ns), p.QPS)
	}
	if jsonOut != "" {
		if err := bench.WriteReport(jsonOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", jsonOut)
	}
	if baseline != "" {
		base, err := bench.ReadReport(baseline)
		if err != nil {
			return err
		}
		if v := bench.CompareReports(base, report, tol); len(v) > 0 {
			for _, line := range v {
				fmt.Fprintln(os.Stderr, "REGRESSION:", line)
			}
			return fmt.Errorf("%d point(s) regressed beyond %.0f%% vs %s", len(v), tol*100, baseline)
		}
		fmt.Fprintf(w, "perf gate passed: no p50 regression beyond %.0f%% vs %s\n", tol*100, baseline)
	}
	return nil
}

// runIngest measures the sustained-ingest sweep — read-only vs
// under-writers top-K latency, acknowledged writer throughput at two
// corpus scales, and WAL-replay recovery time — writes the JSON report,
// prints the two headline ratios (writer scale-independence and read
// penalty under writers), and optionally gates against a committed
// baseline.
func runIngest(w io.Writer, cfg bench.Config, jsonOut, baseline string, tol float64) error {
	dir, err := os.MkdirTemp("", "xkwingest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	report, err := bench.Ingest(cfg, dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== ingest: scale=%.2f queries/pt=%d reps=%d K=%d (%s/%s, %d CPU, %s) ==\n",
		cfg.Scale, cfg.QueriesPerPt, cfg.RepsPerQuery, cfg.TopK,
		report.Env.GOOS, report.Env.GOARCH, report.Env.NumCPU, report.Env.GoVersion)
	fmt.Fprintf(w, "%-18s %-10s %12s %12s %12s %10s\n", "phase", "corpus", "p50", "p95", "p99", "qps")
	pt := map[string]bench.Point{}
	for _, p := range report.Points {
		fmt.Fprintf(w, "%-18s %-10s %12v %12v %12v %10.0f\n",
			p.Engine, p.Label, time.Duration(p.P50Ns), time.Duration(p.P95Ns), time.Duration(p.P99Ns), p.QPS)
		pt[p.Engine+"/"+p.Label] = p
	}
	if w1, w2 := pt["writer/scale=1x"], pt["writer/scale=2x"]; w1.QPS > 0 && w2.QPS > 0 {
		fmt.Fprintf(w, "writer throughput 2x-corpus/1x-corpus: %.2f (1.0 = corpus-independent)\n", w2.QPS/w1.QPS)
	}
	for _, label := range []string{"scale=1x", "scale=2x"} {
		ro, uw := pt["read-only/"+label], pt["read-under-writers/"+label]
		if ro.P50Ns > 0 {
			fmt.Fprintf(w, "read p50 under writers / read-only (%s): %.2fx\n", label, float64(uw.P50Ns)/float64(ro.P50Ns))
		}
	}
	if jsonOut != "" {
		if err := bench.WriteReport(jsonOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", jsonOut)
	}
	if baseline != "" {
		base, err := bench.ReadReport(baseline)
		if err != nil {
			return err
		}
		if v := bench.CompareReports(base, report, tol); len(v) > 0 {
			for _, line := range v {
				fmt.Fprintln(os.Stderr, "REGRESSION:", line)
			}
			return fmt.Errorf("%d point(s) regressed beyond %.0f%% vs %s", len(v), tol*100, baseline)
		}
		fmt.Fprintf(w, "perf gate passed: no p50 regression beyond %.0f%% vs %s\n", tol*100, baseline)
	}
	return nil
}

// runAttribution measures the per-stage latency-attribution sweep —
// each stage's share of scatter-gather wall time at shards=1 vs
// shards=4 — writes the JSON report plus a sample stitched trace
// (<json>_trace.json), and optionally gates stage-share drift against a
// committed baseline (the shares ride the p50 slot under a fixed floor;
// see internal/bench's attribution encoding).
func runAttribution(w io.Writer, cfg bench.Config, jsonOut, baseline string, tol float64) error {
	report, sample, err := bench.Attribution(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== attribution: scale=%.2f queries/pt=%d reps=%d K=%d (%s/%s, %d CPU, %s) ==\n",
		cfg.Scale, cfg.QueriesPerPt, cfg.RepsPerQuery, cfg.TopK,
		report.Env.GOOS, report.Env.GOARCH, report.Env.NumCPU, report.Env.GoVersion)
	fmt.Fprintf(w, "%-10s %-28s %8s\n", "engine", "stage", "share")
	for _, p := range report.Points {
		fmt.Fprintf(w, "%-10s %-28s %7.1f%%\n", p.Engine, p.Label, 100*bench.DecodeShare(p.P50Ns))
	}
	if jsonOut != "" {
		if err := bench.WriteReport(jsonOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", jsonOut)
		if sample != nil {
			tracePath := strings.TrimSuffix(jsonOut, ".json") + "_trace.json"
			data, err := json.MarshalIndent(sample, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(tracePath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "sample stitched trace written to %s\n", tracePath)
		}
	}
	if baseline != "" {
		base, err := bench.ReadReport(baseline)
		if err != nil {
			return err
		}
		if v := bench.CompareReports(base, report, tol); len(v) > 0 {
			for _, line := range v {
				fmt.Fprintln(os.Stderr, "REGRESSION:", line)
			}
			return fmt.Errorf("%d stage share(s) drifted beyond tolerance vs %s", len(v), baseline)
		}
		fmt.Fprintf(w, "attribution gate passed: no stage-share drift beyond tolerance vs %s\n", baseline)
	}
	return nil
}

// runCapture drives the deterministic mixed workload through the facade
// with the flight recorder on and writes the capture as an NDJSON
// workload file.
func runCapture(w io.Writer, cfg bench.Config, workload, qlogDir string) error {
	if workload == "" {
		return fmt.Errorf("-exp capture requires -workload <file.ndjson>")
	}
	n, err := bench.CaptureWorkload(cfg, workload, qlogDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== capture: scale=%.2f seed=%d queries/pt=%d K=%d ==\n",
		cfg.Scale, cfg.Seed, cfg.QueriesPerPt, cfg.TopK)
	fmt.Fprintf(w, "%d records captured to %s\n", n, workload)
	if qlogDir != "" {
		fmt.Fprintf(w, "rotating qlog sink written under %s\n", qlogDir)
	}
	return nil
}

// runReplay re-executes a captured workload, prints the per-recorded-
// outcome latency table and the fingerprint verdict, writes the JSON
// report, optionally gates against a baseline, and fails on any
// fingerprint mismatch — the replay determinism gate.
func runReplay(w io.Writer, cfg bench.Config, workload string, paced bool, jsonOut, baseline string, tol float64) error {
	if workload == "" {
		return fmt.Errorf("-exp replay requires -workload <file.ndjson>")
	}
	report, err := bench.Replay(cfg, workload, bench.ReplayOptions{Paced: paced})
	if err != nil {
		return err
	}
	sum := report.Replay
	fmt.Fprintf(w, "== replay: %s scale=%.2f seed=%d paced=%v (%s/%s, %d CPU, %s) ==\n",
		workload, cfg.Scale, cfg.Seed, paced,
		report.Env.GOOS, report.Env.GOARCH, report.Env.NumCPU, report.Env.GoVersion)
	fmt.Fprintf(w, "%-20s %8s %12s %12s %12s %10s\n", "recorded outcome", "queries", "p50", "p95", "p99", "qps")
	for _, p := range report.Points {
		fmt.Fprintf(w, "%-20s %8d %12v %12v %12v %10.0f\n",
			p.Label, p.Queries, time.Duration(p.P50Ns), time.Duration(p.P95Ns), time.Duration(p.P99Ns), p.QPS)
	}
	fmt.Fprintf(w, "replayed %d/%d records; fingerprints checked %d, mismatches %d\n",
		sum.Replayed, sum.Records, sum.Checked, sum.Mismatches)
	if jsonOut != "" {
		if err := bench.WriteReport(jsonOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", jsonOut)
	}
	if baseline != "" {
		base, err := bench.ReadReport(baseline)
		if err != nil {
			return err
		}
		if v := bench.CompareReports(base, report, tol); len(v) > 0 {
			for _, line := range v {
				fmt.Fprintln(os.Stderr, "REGRESSION:", line)
			}
			return fmt.Errorf("%d point(s) regressed beyond %.0f%% vs %s", len(v), tol*100, baseline)
		}
		fmt.Fprintf(w, "perf gate passed: no p50 regression beyond %.0f%% vs %s\n", tol*100, baseline)
	}
	if sum.Mismatches > 0 {
		for _, m := range sum.MismatchExamples {
			fmt.Fprintln(os.Stderr, "MISMATCH:", m)
		}
		return fmt.Errorf("%d fingerprint mismatch(es): replay did not reproduce the capture", sum.Mismatches)
	}
	fmt.Fprintln(w, "replay deterministic: every recorded-ok fingerprint reproduced")
	return nil
}

// dumpMetrics writes one environment's accumulated engine metrics in both
// exposition formats, plus the slow-query log when a threshold was set.
func dumpMetrics(w io.Writer, name string, e *bench.Env) {
	snap := e.Obs.Snapshot()
	fmt.Fprintf(w, "\n=== %s metrics (prometheus) ===\n", name)
	snap.WritePrometheus(w)
	fmt.Fprintf(w, "\n=== %s metrics (json) ===\n", name)
	snap.WriteJSON(w)
	fmt.Fprintln(w)
	if e.Obs.SlowQueryThreshold() > 0 {
		sq := e.Obs.SlowQueries()
		fmt.Fprintf(w, "\n=== %s slow queries (>= %v, %d captured) ===\n", name, e.Obs.SlowQueryThreshold(), len(sq))
		for _, q := range sq {
			fmt.Fprintf(w, "%-9s k=%-3d %-8v results=%-5d %q\n", q.Engine, q.K, q.Elapsed.Round(time.Microsecond), q.Results, q.Query)
		}
	}
}
