// Command xkwbench regenerates the paper's evaluation section: Table I,
// Figures 9 and 10, and the design-choice ablations, over the synthetic
// DBLP and XMark corpora.
//
// Usage:
//
//	xkwbench                      # default sweep (scale 0.25, 8 queries/pt)
//	xkwbench -full                # the paper's protocol (40 queries x 5 runs, scale 1.0)
//	xkwbench -exp fig9 -scale 0.5 # one experiment at a chosen scale
//	xkwbench -o results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		full    = flag.Bool("full", false, "run the paper-scale protocol (slower)")
		scale   = flag.Float64("scale", 0, "override dataset scale factor")
		seed    = flag.Int64("seed", 1, "workload seed")
		queries = flag.Int("queries", 0, "override queries per sweep point")
		reps    = flag.Int("reps", 0, "override repetitions per query")
		topK    = flag.Int("k", 10, "K for the top-K experiments")
		exp     = flag.String("exp", "all", "experiment: all, table1, fig9, fig10, ablations")
		out     = flag.String("o", "", "also write output to this file")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *full {
		cfg = bench.FullConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.QueriesPerPt = *queries
	}
	if *reps > 0 {
		cfg.RepsPerQuery = *reps
	}
	cfg.Seed = *seed
	cfg.TopK = *topK

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkwbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *exp == "all" {
		bench.RunAll(w, cfg)
		return
	}
	dblp := bench.NewDBLPEnv(cfg.Scale, cfg.Seed)
	switch *exp {
	case "table1":
		xmark := bench.NewXMarkEnv(cfg.Scale, cfg.Seed)
		bench.Table1(w, dblp, xmark)
	case "fig9":
		bench.Figure9(w, dblp, cfg)
	case "fig10":
		bench.Figure10(w, dblp, cfg)
	case "ablations":
		xmark := bench.NewXMarkEnv(cfg.Scale, cfg.Seed)
		bench.AblationThreshold(w, dblp, cfg)
		bench.AblationJoinPlan(w, dblp, cfg)
		bench.AblationCompression(w, dblp, xmark)
	default:
		fmt.Fprintf(os.Stderr, "xkwbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
