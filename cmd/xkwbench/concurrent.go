package main

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/gen"
)

// The -writers experiment measures what snapshot isolation buys: query
// latency while N writer goroutines continuously mutate the index, against
// the same workload on a read-only index. With copy-on-write snapshots a
// query never blocks behind a writer, so the concurrent percentiles should
// stay within a small factor of the read-only baseline (the residual cost
// is cache pressure from the writers' list rebuilds).

// concurrentServing runs the mixed read/write experiment and prints the
// latency comparison.
func concurrentServing(w io.Writer, scale float64, seed int64, writers, topK int) error {
	ds := gen.DBLP(scale, seed)
	var xml strings.Builder
	if err := ds.Doc.WriteXML(&xml); err != nil {
		return err
	}
	idx, err := xmlsearch.Open(strings.NewReader(xml.String()))
	if err != nil {
		return err
	}

	queries := servingQueries(ds, seed, 64)
	const (
		warm    = 50
		samples = 400
	)
	run := func() []time.Duration {
		lat := make([]time.Duration, 0, samples)
		for i := 0; i < warm+samples; i++ {
			q := queries[i%len(queries)]
			start := time.Now()
			if _, err := idx.TopK(q, topK, xmlsearch.SearchOptions{}); err != nil {
				panic(fmt.Sprintf("xkwbench: query %q: %v", q, err))
			}
			if i >= warm {
				lat = append(lat, time.Since(start))
			}
		}
		return lat
	}

	base := run()

	var stop atomic.Bool
	var wg sync.WaitGroup
	var mutations atomic.Int64
	hosts := mutationHosts(ds)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			var mine []string
			for i := 0; !stop.Load(); i++ {
				if len(mine) > 8 {
					d := mine[0]
					mine = mine[1:]
					// Churn nodes always form a prefix of their host's
					// children (inserted at the front, removed from the
					// front), so this never detaches original content.
					_ = idx.RemoveElement(d)
					mutations.Add(1)
					continue
				}
				host := hosts[rng.Intn(len(hosts))]
				text := ds.HighTerms[rng.Intn(len(ds.HighTerms))]
				d, err := idx.InsertElement(host, 0, "churn", text)
				if err == nil {
					mine = append(mine, d)
				}
				mutations.Add(1)
			}
		}(g)
	}
	contended := run()
	stop.Store(true)
	wg.Wait()

	bp50, bp95 := percentiles(base)
	cp50, cp95 := percentiles(contended)
	fmt.Fprintf(w, "\n=== concurrent serving (dblp scale %.2g, %d writers, top-%d) ===\n", scale, writers, topK)
	fmt.Fprintf(w, "%-22s %12s %12s\n", "", "p50", "p95")
	fmt.Fprintf(w, "%-22s %12v %12v\n", "read-only", bp50.Round(time.Microsecond), bp95.Round(time.Microsecond))
	fmt.Fprintf(w, "%-22s %12v %12v\n", fmt.Sprintf("with %d writers", writers), cp50.Round(time.Microsecond), cp95.Round(time.Microsecond))
	fmt.Fprintf(w, "p50 ratio: %.2fx over %d concurrent mutations\n",
		float64(cp50)/float64(bp50), mutations.Load())
	ws := idx.Stats().Writer
	fmt.Fprintf(w, "writer: %d inserts, %d removes, %d rejected, %d lists rebuilt, %d renumberings, %d snapshots\n",
		ws.Inserts, ws.Removes, ws.Errors, ws.DirtyTerms, ws.Renumbered, ws.Snapshots)
	return nil
}

// servingQueries mixes two-keyword band/high queries like the Figure 10
// random workload.
func servingQueries(ds *gen.Dataset, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	var out []string
	for i := 0; i < n; i++ {
		band := ds.BandValues[rng.Intn(len(ds.BandValues))]
		lows := ds.Bands[band]
		q := lows[rng.Intn(len(lows))] + " " + ds.HighTerms[rng.Intn(len(ds.HighTerms))]
		out = append(out, q)
	}
	return out
}

// mutationHosts picks stable insertion parents: the root's direct children,
// whose Dewey ids writers cannot shift (only the root's grandchildren churn).
func mutationHosts(ds *gen.Dataset) []string {
	var hosts []string
	for i := range ds.Doc.Root.Children {
		hosts = append(hosts, fmt.Sprintf("1.%d", i+1))
	}
	if len(hosts) == 0 {
		hosts = []string{"1"}
	}
	return hosts
}

func percentiles(lat []time.Duration) (p50, p95 time.Duration) {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*50/100], lat[len(lat)*95/100]
}
