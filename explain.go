package xmlsearch

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/topk"
)

// ListInfo describes one keyword's inverted list as the explained query
// saw it.
type ListInfo struct {
	Keyword string `json:"keyword"`
	Rows    int    `json:"rows"` // occurrence count (document frequency)
}

// Explanation reports what a join-based evaluation did: the workload
// shape, the per-level join decisions (Section III-C), and — for top-K
// runs — how much of the score-sorted index was read before the answer
// was proven (Section IV). It is the library-level view of the counters
// the paper's experiments are built on.
type Explanation struct {
	Keywords  []string
	DocFreqs  []int // per keyword, occurrence counts (kept for compatibility)
	Semantics Semantics
	K         int // 0 for a complete evaluation
	Results   int
	Elapsed   time.Duration

	// Lists is the typed per-keyword view of the workload: each keyword
	// with the length of its inverted list.
	Lists []ListInfo
	// JoinOrder is the keywords in the order the engine joined their
	// lists: shortest-first for the complete evaluation (Section III-C);
	// for a top-K run the star join consumes every list simultaneously,
	// so the order is the query's own.
	JoinOrder []string
	// Trace is the full event trace of the explained run (join steps,
	// plan switches, threshold updates, termination). Render it with
	// RenderTrace.
	Trace *obs.Trace

	// Plan is the query plan: which engine the planner resolved, and —
	// when the query was explained under AlgoAuto — every candidate
	// engine's cost estimate and whether the plan came from the cache.
	Plan *QueryPlan

	// Complete evaluation (K == 0).
	Levels      int   // columns processed bottom-up
	MergeJoins  int   // joins executed as merge joins
	IndexJoins  int   // joins executed as index joins (dynamic optimization)
	RunsScanned int64 // run entries touched by merge joins
	Probes      int64 // binary-search probes issued by index joins

	// Top-K evaluation (K > 0).
	RowsPulled      int  // rows retrieved from the score-sorted cursors
	RowsTotal       int  // what a full scan of the same columns would read
	EarlyEmits      int  // results emitted before their column drained
	TerminatedEarly bool // stopped before the sweep reached the root
}

// Explain runs the query through the join-based engine (the complete
// evaluation when k == 0, the top-K star join otherwise) and returns the
// execution profile together with the result count. Only the join-based
// engines expose these counters; baselines are for comparison benchmarks.
// AlgoAuto is accepted: the counters still come from the join-based run,
// while the attached Plan reports the engine the cost-based planner
// would pick and every candidate's estimate.
func (ix *Index) Explain(query string, k int, opt SearchOptions) (*Explanation, error) {
	if opt.Algorithm != AlgoJoin && opt.Algorithm != AlgoAuto {
		return nil, fmt.Errorf("xmlsearch: Explain supports the join-based engine only")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	plan, err := ix.planFor(keywords, k, opt)
	if err != nil {
		return nil, err
	}
	decay := opt.Decay
	if decay == 0 {
		decay = score.DefaultDecay
	}
	s := ix.view()
	ex := &Explanation{Keywords: keywords, Semantics: opt.Semantics, K: k, Trace: obs.NewTrace(), Plan: plan}
	for _, w := range keywords {
		df := s.store.DocFreq(w)
		ex.DocFreqs = append(ex.DocFreqs, df)
		ex.Lists = append(ex.Lists, ListInfo{Keyword: w, Rows: df})
	}
	start := time.Now()
	// Explained runs carry the same stage taxonomy as the *Traced entry
	// points, so obs.BreakdownOf reduces an explanation's trace too.
	if k <= 0 {
		root := ex.Trace.Start("explain/" + obs.EngineJoin.String())
		osp := ex.Trace.Stage(obs.StageOpen)
		lists := s.store.Lists(keywords, ex.Trace)
		ex.Trace.End(osp)
		jsp := ex.Trace.Stage(obs.StageJoin)
		rs, st, _ := core.EvaluateCtx(context.Background(), lists,
			core.Options{Semantics: coreSem(opt.Semantics), Decay: decay, Trace: ex.Trace})
		ex.Trace.End(jsp)
		ex.Trace.End(root)
		ex.Elapsed = time.Since(start)
		ex.Results = len(rs)
		ex.Levels = st.Levels
		ex.MergeJoins = st.MergeJoins
		ex.IndexJoins = st.IndexJoins
		ex.RunsScanned = st.RunsScanned
		ex.Probes = st.Probes
		for _, j := range st.JoinOrder {
			ex.JoinOrder = append(ex.JoinOrder, keywords[j])
		}
		return ex, nil
	}
	root := ex.Trace.Start("explain/" + obs.EngineTopK.String())
	osp := ex.Trace.Stage(obs.StageOpen)
	lists := s.store.TopKLists(keywords, ex.Trace)
	ex.Trace.End(osp)
	jsp := ex.Trace.Stage(obs.StageJoin)
	rs, st, _ := topk.EvaluateCtx(context.Background(), lists,
		topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k, Trace: ex.Trace})
	ex.Trace.End(jsp)
	ex.Trace.End(root)
	ex.Elapsed = time.Since(start)
	ex.Results = len(rs)
	ex.Levels = st.Levels
	ex.RowsPulled = st.RowsPulled
	ex.RowsTotal = st.RowsTotal
	ex.EarlyEmits = st.EarlyEmits
	ex.TerminatedEarly = st.TerminatedEarly
	// The star join reads every list in lockstep; the join order is the
	// query's keyword order.
	ex.JoinOrder = append(ex.JoinOrder, keywords...)
	return ex, nil
}

// RenderTrace writes the explained run's span-and-event timeline.
func (e *Explanation) RenderTrace(w io.Writer) {
	e.Trace.Render(w)
}

// String renders the explanation in a compact human-readable form.
func (e *Explanation) String() string {
	if e.K > 0 {
		return fmt.Sprintf("top-%d %v over %v df=%v: %d results in %v; pulled %d/%d rows, %d early emits, terminated early: %v",
			e.K, e.Semantics, e.Keywords, e.DocFreqs, e.Results, e.Elapsed.Round(time.Microsecond),
			e.RowsPulled, e.RowsTotal, e.EarlyEmits, e.TerminatedEarly)
	}
	return fmt.Sprintf("full %v over %v df=%v join-order=%v: %d results in %v; %d levels, %d merge + %d index joins (%d runs, %d probes)",
		e.Semantics, e.Keywords, e.DocFreqs, e.JoinOrder, e.Results, e.Elapsed.Round(time.Microsecond),
		e.Levels, e.MergeJoins, e.IndexJoins, e.RunsScanned, e.Probes)
}

// String names the semantics for display.
func (s Semantics) String() string {
	if s == SLCA {
		return "SLCA"
	}
	return "ELCA"
}
