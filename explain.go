package xmlsearch

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/topk"
)

// Explanation reports what a join-based evaluation did: the workload
// shape, the per-level join decisions (Section III-C), and — for top-K
// runs — how much of the score-sorted index was read before the answer
// was proven (Section IV). It is the library-level view of the counters
// the paper's experiments are built on.
type Explanation struct {
	Keywords  []string
	DocFreqs  []int // per keyword, occurrence counts
	Semantics Semantics
	K         int // 0 for a complete evaluation
	Results   int
	Elapsed   time.Duration

	// Complete evaluation (K == 0).
	Levels      int   // columns processed bottom-up
	MergeJoins  int   // joins executed as merge joins
	IndexJoins  int   // joins executed as index joins (dynamic optimization)
	RunsScanned int64 // run entries touched by merge joins
	Probes      int64 // binary-search probes issued by index joins

	// Top-K evaluation (K > 0).
	RowsPulled      int  // rows retrieved from the score-sorted cursors
	RowsTotal       int  // what a full scan of the same columns would read
	EarlyEmits      int  // results emitted before their column drained
	TerminatedEarly bool // stopped before the sweep reached the root
}

// Explain runs the query through the join-based engine (the complete
// evaluation when k == 0, the top-K star join otherwise) and returns the
// execution profile together with the result count. Only the join-based
// engines expose these counters; baselines are for comparison benchmarks.
func (ix *Index) Explain(query string, k int, opt SearchOptions) (*Explanation, error) {
	if opt.Algorithm != AlgoJoin {
		return nil, fmt.Errorf("xmlsearch: Explain supports the join-based engine only")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	decay := opt.Decay
	if decay == 0 {
		decay = score.DefaultDecay
	}
	ex := &Explanation{Keywords: keywords, Semantics: opt.Semantics, K: k}
	for _, w := range keywords {
		ex.DocFreqs = append(ex.DocFreqs, ix.store.DocFreq(w))
	}
	start := time.Now()
	if k <= 0 {
		lists := make([]*colstore.List, len(keywords))
		for i, w := range keywords {
			lists[i] = ix.store.List(w)
		}
		rs, st := core.Evaluate(lists, core.Options{Semantics: coreSem(opt.Semantics), Decay: decay})
		ex.Elapsed = time.Since(start)
		ex.Results = len(rs)
		ex.Levels = st.Levels
		ex.MergeJoins = st.MergeJoins
		ex.IndexJoins = st.IndexJoins
		ex.RunsScanned = st.RunsScanned
		ex.Probes = st.Probes
		return ex, nil
	}
	lists := make([]*colstore.TKList, len(keywords))
	for i, w := range keywords {
		lists[i] = ix.store.TopKList(w)
	}
	rs, st := topk.Evaluate(lists, topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k})
	ex.Elapsed = time.Since(start)
	ex.Results = len(rs)
	ex.Levels = st.Levels
	ex.RowsPulled = st.RowsPulled
	ex.RowsTotal = st.RowsTotal
	ex.EarlyEmits = st.EarlyEmits
	ex.TerminatedEarly = st.TerminatedEarly
	return ex, nil
}

// String renders the explanation in a compact human-readable form.
func (e *Explanation) String() string {
	if e.K > 0 {
		return fmt.Sprintf("top-%d %v over %v df=%v: %d results in %v; pulled %d/%d rows, %d early emits, terminated early: %v",
			e.K, e.Semantics, e.Keywords, e.DocFreqs, e.Results, e.Elapsed.Round(time.Microsecond),
			e.RowsPulled, e.RowsTotal, e.EarlyEmits, e.TerminatedEarly)
	}
	return fmt.Sprintf("full %v over %v df=%v: %d results in %v; %d levels, %d merge + %d index joins (%d runs, %d probes)",
		e.Semantics, e.Keywords, e.DocFreqs, e.Results, e.Elapsed.Round(time.Microsecond),
		e.Levels, e.MergeJoins, e.IndexJoins, e.RunsScanned, e.Probes)
}

// String names the semantics for display.
func (s Semantics) String() string {
	if s == SLCA {
		return "SLCA"
	}
	return "ELCA"
}
