package xmlsearch

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// BenchmarkPlanCold measures building an AlgoAuto plan from lexicon
// statistics with the plan cache emptied every iteration; BenchmarkPlanCached
// is the same query answered from the cache. The repeated-query speedup the
// prepared-query layer claims is the ratio of the two.
func BenchmarkPlanCold(b *testing.B) {
	idx, query := planBenchFixture(b)
	opt := SearchOptions{Algorithm: AlgoAuto}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.plans.Reset()
		if _, err := idx.Plan(query, 10, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCached re-plans the identical query against a warm cache.
func BenchmarkPlanCached(b *testing.B) {
	idx, query := planBenchFixture(b)
	opt := SearchOptions{Algorithm: AlgoAuto}
	if _, err := idx.Plan(query, 10, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Plan(query, 10, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func planBenchFixture(b *testing.B) (*Index, string) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	params := testutil.MediumParams()
	idx, err := FromDocument(testutil.RandomDoc(rng, params))
	if err != nil {
		b.Fatal(err)
	}
	return idx, strings.Join(testutil.RandomQuery(rng, params.Vocab, 3), " ")
}
