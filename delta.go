package xmlsearch

import (
	"sort"

	"repro/internal/colstore"
	"repro/internal/dewey"
	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Delta segments: the in-memory half of the incremental write path. A
// fast-path insert does not clone the corpus — it records the operation in
// a small immutable delta segment layered over the base snapshot. The
// delta holds the floating nodes (attached to base parents only through a
// copy-on-write children map, so the base tree is never mutated), the
// fully merged occurrence lists of the dirty terms, and the replay script
// that rebuilds the same logical state from the base (the compactor and
// the slow path fold it back into a materialized snapshot). Queries read
// base ⊕ delta through the snapshot accessors below plus the column-store
// overlay (colstore.NewOverlay), so every engine works unchanged.
//
// Only appending leaf inserts ride the fast path: a removal, an insert at
// a non-tail position, or an insert whose JDewey number cannot be minted
// above every existing number at its level (the append-order eligibility
// check) falls back to the materializing slow path. The delta therefore
// never carries tombstones, and a merged list is always "base list plus
// appended occurrences, rescored".

// deltaOp is one fast-path insert, recorded as its replayable arguments:
// the parent's Dewey identifier is stable under append-only growth, so
// replaying the ops in order against the base snapshot reproduces the
// delta view exactly (modulo freshly assigned JDewey numbers).
type deltaOp struct {
	parent dewey.ID
	pos    int
	tag    string
	text   string
}

// deltaSeg is the immutable delta of one snapshot. Successive fast-path
// publishes build successor segments copy-on-write; a pinned reader keeps
// its segment unchanged forever.
type deltaSeg struct {
	// ops replays the segment against the base snapshot, in order.
	ops []deltaOp
	// added indexes the floating nodes: level → minted JDewey number → node.
	added map[int]map[uint32]*xmltree.Node
	// kids overrides the visible child list of parents that gained floating
	// children (the base node's own Children slice is never touched).
	kids map[*xmltree.Node][]*xmltree.Node
	// terms holds the full merged occurrence list of every dirty term, in
	// JDewey-sequence order with document frequencies rescored — exactly
	// what the column-store overlay serves.
	terms map[string][]occur.Occ
	// maxJD tracks the highest minted JDewey number per level; minting
	// always goes above max(enc.LevelMax, maxJD) so numbers stay unique.
	maxJD map[int]uint32
	// topParentJD tracks, per level with minted nodes, the parent number of
	// the current maximum-numbered node — the eligibility bound for the
	// next append at that level.
	topParentJD map[int]uint32
	addedCount  int
	depth       int
}

// successor copies the segment so the next fast-path publish can extend it
// without disturbing pinned readers. Inner maps and occurrence slices are
// shared; the apply step re-copies exactly the entries it changes.
func (d *deltaSeg) successor() *deltaSeg {
	nd := &deltaSeg{
		ops:         append([]deltaOp(nil), d.ops...),
		added:       make(map[int]map[uint32]*xmltree.Node, len(d.added)+1),
		kids:        make(map[*xmltree.Node][]*xmltree.Node, len(d.kids)+1),
		terms:       make(map[string][]occur.Occ, len(d.terms)+1),
		maxJD:       make(map[int]uint32, len(d.maxJD)+1),
		topParentJD: make(map[int]uint32, len(d.topParentJD)+1),
		addedCount:  d.addedCount,
		depth:       d.depth,
	}
	for l, m := range d.added {
		nd.added[l] = m
	}
	for p, ks := range d.kids {
		nd.kids[p] = ks
	}
	for t, occs := range d.terms {
		nd.terms[t] = occs
	}
	for l, v := range d.maxJD {
		nd.maxJD[l] = v
	}
	for l, v := range d.topParentJD {
		nd.topParentJD[l] = v
	}
	return nd
}

// --- snapshot accessors: the one merged view every engine reads through ---

// nodeByJDewey resolves (level, number) against base ⊕ delta.
func (s *snapshot) nodeByJDewey(level int, jd uint32) *xmltree.Node {
	if s.delta != nil {
		if n := s.delta.added[level][jd]; n != nil {
			return n
		}
	}
	return s.doc.NodeByJDewey(level, jd)
}

// visibleChildren returns n's children as this snapshot sees them: the
// copy-on-write list when n gained floating children, the base list
// otherwise.
func (s *snapshot) visibleChildren(n *xmltree.Node) []*xmltree.Node {
	if s.delta != nil {
		if ks, ok := s.delta.kids[n]; ok {
			return ks
		}
	}
	return n.Children
}

// nodeByDewey resolves a Dewey identifier against base ⊕ delta by walking
// the visible child lists.
func (s *snapshot) nodeByDewey(id dewey.ID) *xmltree.Node {
	if s.delta == nil {
		return s.doc.NodeByDewey(id)
	}
	if s.doc.Root == nil || len(id) == 0 || id[0] != 1 {
		return nil
	}
	n := s.doc.Root
	for _, c := range id[1:] {
		ks := s.visibleChildren(n)
		if c < 1 || int(c) > len(ks) {
			return nil
		}
		n = ks[c-1]
	}
	return n
}

// docLen is the visible node count: base plus floating inserts.
func (s *snapshot) docLen() int {
	if s.delta != nil {
		return s.doc.Len() + s.delta.addedCount
	}
	return s.doc.Len()
}

// docDepth is the visible tree depth.
func (s *snapshot) docDepth() int {
	if s.delta != nil && s.delta.depth > s.doc.Depth {
		return s.delta.depth
	}
	return s.doc.Depth
}

// occMap returns the occurrence map of the merged view. Delta-free
// snapshots return their own map; delta snapshots lazily merge the dirty
// terms over the base (re-sorted into document order — the delta keeps
// them in JDewey order for the column overlay, while the document-order
// baselines want Dewey order).
func (s *snapshot) occMap() *occur.Map {
	if s.delta == nil {
		return s.m
	}
	s.occOnce.Do(func() {
		nm := &occur.Map{Terms: make(map[string][]occur.Occ, len(s.m.Terms)), N: s.m.N, Depth: s.docDepth()}
		for t, occs := range s.m.Terms {
			nm.Terms[t] = occs
		}
		for t, occs := range s.delta.terms {
			cp := make([]occur.Occ, len(occs))
			copy(cp, occs)
			sortByDewey(cp)
			nm.Terms[t] = cp
		}
		s.occ = nm
	})
	return s.occ
}

// sortByDewey stably sorts occurrences into document (Dewey) order.
func sortByDewey(occs []occur.Occ) {
	sort.SliceStable(occs, func(a, b int) bool {
		return dewey.Compare(occs[a].Node.Dewey, occs[b].Node.Dewey) < 0
	})
}

// baseStore returns the snapshot's base column store (the bottom of the
// overlay chain; the store itself when the snapshot carries no delta).
func (s *snapshot) baseStore() *colstore.Store {
	st := s.store
	for st.Base() != nil {
		st = st.Base()
	}
	return st
}

// --- the fast path ---

// topParentJD is the eligibility bound for appending at level: the parent
// number of the current maximum-numbered node there (0 when the level is
// empty). A new node minted above every number at its level keeps the
// JDewey order requirement iff its parent's number is at least this bound.
func (s *snapshot) topParentJD(level int) uint32 {
	if s.delta != nil {
		if v, ok := s.delta.topParentJD[level]; ok {
			return v
		}
	}
	top := s.doc.MaxJDeweyNode(level)
	if top == nil || top.Parent == nil {
		return 0
	}
	return top.Parent.JD
}

// fastInsert attempts the delta fast path for inserting <tag>text</tag>
// under parent at position pos against cur. It returns the successor
// snapshot and true, or (nil, false) when the operation must take the
// materializing slow path: ElemRank indexes (a structural mutation moves
// every rank), non-append positions, or an append whose JDewey number
// cannot legally go above its level's maximum.
func (ix *Index) fastInsert(cur *snapshot, parent *xmltree.Node, pos int, tag, text string) (*snapshot, bool) {
	if ix.cfg.elemRank {
		return nil, false
	}
	if pos != len(cur.visibleChildren(parent)) {
		return nil, false
	}
	level := parent.Level + 1
	if parent.JD < cur.topParentJD(level) {
		return nil, false
	}
	// Mint the new number above everything assigned or reserved at the
	// level, in base numbering and delta alike.
	jd := cur.enc.LevelMax(level)
	var d *deltaSeg
	if cur.delta != nil {
		d = cur.delta.successor()
		if m := d.maxJD[level]; m > jd {
			jd = m
		}
	} else {
		d = &deltaSeg{
			added:       map[int]map[uint32]*xmltree.Node{},
			kids:        map[*xmltree.Node][]*xmltree.Node{},
			terms:       map[string][]occur.Occ{},
			maxJD:       map[int]uint32{},
			topParentJD: map[int]uint32{},
			depth:       cur.doc.Depth,
		}
	}
	jd++
	if jd == 0 { // uint32 wraparound: the level is out of numbers
		return nil, false
	}

	child := &xmltree.Node{
		Tag:    tag,
		Text:   text,
		Parent: parent,
		Dewey:  append(parent.Dewey.Clone(), uint32(pos+1)),
		JD:     jd,
		Level:  level,
		Ord:    cur.doc.Len() + d.addedCount, // synthetic, past every base ordinal
	}
	d.ops = append(d.ops, deltaOp{parent: parent.Dewey.Clone(), pos: pos, tag: tag, text: text})
	lm := make(map[uint32]*xmltree.Node, len(d.added[level])+1)
	for k, v := range d.added[level] {
		lm[k] = v
	}
	lm[jd] = child
	d.added[level] = lm
	ks := cur.visibleChildren(parent)
	d.kids[parent] = append(append(make([]*xmltree.Node, 0, len(ks)+1), ks...), child)
	d.maxJD[level] = jd
	d.topParentJD[level] = parent.JD
	d.addedCount++
	if level > d.depth {
		d.depth = level
	}

	// Merge the new occurrence into each dirty term's full list and rescore
	// it against the new document frequency (the corpus constant N stays
	// frozen, exactly as the slow path does).
	for term, tf := range tokenize.TermCounts(text) {
		prev, dirty := d.terms[term]
		if !dirty {
			base := cur.m.Terms[term]
			prev = make([]occur.Occ, len(base))
			copy(prev, base)
			// The base map is kept in document order, which after a
			// renumbering mutation need not be JDewey order — sort once on
			// first touch.
			sortByJDewey(prev)
		}
		merged := append(append(make([]occur.Occ, 0, len(prev)+1), prev...), occur.Occ{Node: child, TF: tf})
		sortByJDewey(merged)
		df := len(merged)
		for i := range merged {
			merged[i].Score = float32(score.Local(merged[i].TF, df, cur.m.N))
		}
		d.terms[term] = merged
	}

	overlay := colstore.NewOverlay(&occur.Map{Terms: d.terms, N: cur.m.N, Depth: d.depth}, cur.baseStore())
	return &snapshot{
		doc:   cur.doc,
		m:     cur.m,
		store: overlay,
		enc:   cur.enc,
		delta: d,
		epoch: cur.epoch,
	}, true
}

// materializeOf folds base ⊕ delta into a delta-free snapshot the old
// clone-everything way: clone the base parts, replay the delta's ops
// through the real JDewey maintenance path, and rebuild every dirty list.
// It reads only the immutable cur, so callers may run it off the write
// lock (the background compactor does); the result is private until
// published. For a delta-free cur it is exactly the old clone().
func (ix *Index) materializeOf(cur *snapshot) *snapshot {
	doc := cur.doc.Clone()
	next := &snapshot{
		doc:   doc,
		m:     cur.m.CloneRemapped(doc.Nodes),
		store: cur.baseStore().Clone(),
		enc:   cur.enc.CloneFor(doc),
	}
	if cur.delta == nil {
		return next
	}
	dirty := map[string]bool{}
	for _, op := range cur.delta.ops {
		parent := next.doc.NodeByDewey(op.parent)
		child := &xmltree.Node{Tag: op.tag, Text: op.text}
		for _, term := range tokenize.Tokens(op.text) {
			dirty[term] = true
		}
		// Append-only replay: the recorded Dewey paths resolve unchanged,
		// and Insert cannot fail for a leaf.
		if moved, err := next.enc.Insert(parent, child, op.pos); err == nil && moved != nil {
			collectTerms(moved, dirty)
		}
	}
	ix.applyDirty(next, dirty)
	return next
}
