package xmlsearch

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// Facade-level flight-recorder tests: every entry point and outcome
// class produces the right record, fingerprints are deterministic, and
// the recorder's counters surface through the metrics registry.

func qlogIndex(t *testing.T) (*Index, *qlog.Recorder) {
	t.Helper()
	ds := gen.DBLP(0.01, 5)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := qlog.New(qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	idx.SetQueryLog(rec)
	return idx, rec
}

// drainRecords waits for the recorder's asynchronous drain to consume n
// records into the ring, then returns them oldest first.
func drainRecords(t *testing.T, rec *qlog.Recorder, n int) []qlog.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(rec.Recent()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("ring has %d records, want %d", len(rec.Recent()), n)
		}
		time.Sleep(time.Millisecond)
	}
	return rec.Recent()
}

// TestQueryLogOutcomes drives one query through every outcome class the
// facade can produce and checks each record's classification and shape.
func TestQueryLogOutcomes(t *testing.T) {
	idx, rec := qlogIndex(t)
	ctx := context.Background()
	const query = "sensor network"

	if _, err := idx.SearchContext(ctx, query, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.TopKContext(ctx, query, 5, SearchOptions{Semantics: SLCA, Algorithm: AlgoAuto}); err != nil {
		t.Fatal(err)
	}
	streamed := 0
	err := idx.TopKStreamContext(ctx, query, 5, SearchOptions{}, func(Result) bool { streamed++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.TopKContext(ctx, query, 5, SearchOptions{MaxDecodedBytes: 1}); err == nil {
		t.Fatal("budget query succeeded")
	}
	if _, err := idx.TopKContext(ctx, query, 5, SearchOptions{MaxDecodedBytes: 1, AllowPartial: true}); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if _, err := idx.TopKContext(expired, query, 5, SearchOptions{}); err == nil {
		t.Fatal("expired-deadline query succeeded")
	}
	cctx, ccancel := context.WithCancel(ctx)
	ccancel()
	if _, err := idx.SearchContext(cctx, query, SearchOptions{}); err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if _, err := idx.SearchContext(ctx, query, SearchOptions{Algorithm: AlgoRDIL}); err == nil {
		t.Fatal("rdil complete evaluation succeeded")
	}

	recs := drainRecords(t, rec, 8)
	wantOutcome := []string{
		qlog.OutcomeOK, qlog.OutcomeOK, qlog.OutcomeOK,
		qlog.OutcomeBudget, qlog.OutcomePartial,
		qlog.OutcomeDeadline, qlog.OutcomeCancelled, qlog.OutcomeError,
	}
	wantOp := []string{"search", "topk", "topk_stream", "topk", "topk", "topk", "search", "search"}
	for i, r := range recs {
		if r.Outcome != wantOutcome[i] || r.Op != wantOp[i] {
			t.Errorf("record %d: outcome=%q op=%q, want %q/%q", i, r.Outcome, r.Op, wantOutcome[i], wantOp[i])
		}
		if strings.Join(r.Keywords, " ") != query {
			t.Errorf("record %d: keywords %v", i, r.Keywords)
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
	}

	// Completed queries carry a fingerprint and a duration.
	for i := 0; i < 3; i++ {
		if recs[i].Fingerprint == "" {
			t.Errorf("ok record %d has no fingerprint", i)
		}
		if recs[i].DurationNs <= 0 {
			t.Errorf("ok record %d: duration %d", i, recs[i].DurationNs)
		}
	}
	// Engines on the column-store read path carry a metered resource
	// profile even though no budget was requested (records 0 and 2: the
	// complete join and the star-join stream; record 1 ran engine=auto,
	// which may plan a baseline whose in-memory lists are not charged).
	for _, i := range []int{0, 2} {
		if recs[i].DecodedBytes <= 0 {
			t.Errorf("record %d (%s): decoded_bytes = %d, want > 0 (metered budget)", i, recs[i].Engine, recs[i].DecodedBytes)
		}
	}
	if recs[0].Results == 0 || recs[2].Results != streamed {
		t.Errorf("result counts: search=%d stream=%d (delivered %d)", recs[0].Results, recs[2].Results, streamed)
	}
	if recs[1].Semantics != "slca" || recs[1].Algo != "auto" || recs[1].K != 5 {
		t.Errorf("topk record shape: %+v", recs[1])
	}
	if recs[0].Semantics != "elca" || recs[0].Engine != "join" {
		t.Errorf("search record shape: %+v", recs[0])
	}
	// The settled partial answer keeps a fingerprint (its certified
	// results are real output) and records the converted abort.
	if recs[4].Fingerprint == "" || recs[4].Err == "" {
		t.Errorf("partial record: fp=%q err=%q", recs[4].Fingerprint, recs[4].Err)
	}
	// Failure outcomes carry the error, no fingerprint.
	for i := 3; i < 8; i++ {
		if i == 4 {
			continue
		}
		if recs[i].Fingerprint != "" || recs[i].Err == "" {
			t.Errorf("record %d (%s): fp=%q err=%q", i, recs[i].Outcome, recs[i].Fingerprint, recs[i].Err)
		}
	}
}

// TestQueryLogFingerprintDeterministic: the same query on the same
// snapshot fingerprints identically across runs and entry points that
// share an engine, with no wall-clock leakage.
func TestQueryLogFingerprintDeterministic(t *testing.T) {
	idx, rec := qlogIndex(t)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := idx.TopKContext(ctx, "sensor network", 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		err := idx.TopKStreamContext(ctx, "sensor network", 5, SearchOptions{}, func(Result) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
	}
	recs := drainRecords(t, rec, 4)
	if recs[0].Fingerprint != recs[1].Fingerprint {
		t.Errorf("topk fingerprints differ across runs: %s vs %s", recs[0].Fingerprint, recs[1].Fingerprint)
	}
	if recs[2].Fingerprint != recs[3].Fingerprint {
		t.Errorf("stream fingerprints differ across runs: %s vs %s", recs[2].Fingerprint, recs[3].Fingerprint)
	}
	if recs[0].Fingerprint == "" {
		t.Error("empty fingerprint")
	}
}

// TestQueryLogTraceID: a traced, retained query's record links the trace
// store exemplar.
func TestQueryLogTraceID(t *testing.T) {
	idx, rec := qlogIndex(t)
	idx.SetTraceStore(obs.NewTraceStore(16, 4, 0, 1)) // threshold 0: retain all
	if _, _, err := idx.TopKTraced(context.Background(), "sensor network", 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	recs := drainRecords(t, rec, 1)
	if recs[0].TraceID == 0 {
		t.Fatal("traced query's record carries no trace ID")
	}
	if _, ok := idx.TraceStore().Get(recs[0].TraceID); !ok {
		t.Fatalf("trace %d not in store", recs[0].TraceID)
	}
}

// TestQueryLogMetrics: recorder activity surfaces in the index metrics
// snapshot and the Prometheus exposition, alongside the build/process
// gauges.
func TestQueryLogMetrics(t *testing.T) {
	idx, rec := qlogIndex(t)
	if _, err := idx.TopK("sensor network", 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	drainRecords(t, rec, 1)
	snap := idx.Stats()
	if snap.QLog.Records != 1 || snap.QLog.Dropped != 0 {
		t.Fatalf("snapshot qlog counters: %+v", snap.QLog)
	}
	if snap.Process.Goroutines <= 0 || snap.Process.GoVersion == "" {
		t.Fatalf("snapshot process gauges: %+v", snap.Process)
	}
	var b strings.Builder
	snap.WritePrometheus(&b)
	out := b.String()
	for _, metric := range []string{"xkw_qlog_records_total 1", "xkw_qlog_dropped_total 0",
		"xkw_build_info{", "xkw_goroutines ", "xkw_heap_bytes "} {
		if !strings.Contains(out, metric) {
			t.Errorf("prometheus exposition missing %q", metric)
		}
	}
}

// TestQueryLogUninstalled: with no recorder the query path stays on the
// nil fast path — queries run, QueryLog is nil, nothing is recorded.
func TestQueryLogUninstalled(t *testing.T) {
	ds := gen.DBLP(0.01, 5)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if idx.QueryLog() != nil {
		t.Fatal("recorder installed on a fresh index")
	}
	if _, err := idx.TopK("sensor network", 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if n := idx.Stats().QLog.Records; n != 0 {
		t.Fatalf("%d records without a recorder", n)
	}
	// Installing then removing restores the fast path.
	rec, err := qlog.New(qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.SetQueryLog(rec)
	idx.SetQueryLog(nil)
	if _, err := idx.TopK("sensor network", 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	if len(rec.Recent()) != 0 {
		t.Fatal("record captured after removal")
	}
}
