package xmlsearch

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// TestStitchedTraceShardSpans: a traced scatter-gather query stitches
// one shard/<i> subtree per contacted shard into the coordinator trace,
// each carrying that shard's own stage spans, and the critical-path
// reduction names a straggler among them.
func TestStitchedTraceShardSpans(t *testing.T) {
	const shards = 2
	sh := mustSharded(t, shardedTestXML, shards)
	_, qs, err := sh.TopKTraced(context.Background(), "sensor omega", 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spans := qs.Trace.Spans()
	stageKids := map[int]int{} // shard id -> stage spans in its subtree
	for i := range spans {
		p := int(spans[i].Parent)
		if p < 0 || p >= len(spans) {
			continue
		}
		if id, ok := obs.SpanShard(spans[p].Name); ok {
			if _, isStage := obs.SpanStage(spans[i].Name); isStage {
				stageKids[id]++
			}
		}
	}
	for i := 0; i < shards; i++ {
		if stageKids[i] == 0 {
			t.Errorf("shard %d: no stage spans under its stitched subtree (spans: %+v)", i, spans)
		}
	}
	if qs.Stages == nil {
		t.Fatal("traced sharded query has no stage breakdown")
	}
	if qs.Stages.Straggler < 0 || qs.Stages.Straggler >= shards {
		t.Errorf("straggler shard %d out of range [0,%d)", qs.Stages.Straggler, shards)
	}
	if len(qs.Stages.Shards) != shards {
		t.Errorf("breakdown has %d shard rows, want %d", len(qs.Stages.Shards), shards)
	}
	// The stitched order is shard-ID order regardless of completion order.
	last := -1
	for i := range spans {
		if id, ok := obs.SpanShard(spans[i].Name); ok {
			if id <= last {
				t.Errorf("shard wrappers out of ID order: %d after %d", id, last)
			}
			last = id
		}
	}
}

// TestStageSignatureShardCountInvariance is the golden stitched-trace
// test: one committed workload query, evaluated at shards=1 and
// shards=4, must produce the identical time-free stage-span signature —
// the same stages tagged coordinator-side and (as a union) shard-side,
// with durations and fan-out projected out.
func TestStageSignatureShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the committed workload's scale-0.25 corpus twice")
	}
	recs, err := qlog.ReadFile("results/workload_sample.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	var query string
	var k int
	for _, r := range recs {
		if r.Op == "topk" && r.Outcome == qlog.OutcomeOK && r.Algo == "join" {
			query, k = strings.Join(r.Keywords, " "), r.K
			break
		}
	}
	if query == "" {
		t.Fatal("no ok top-K join record in the committed workload")
	}

	sigs := map[int]string{}
	for _, n := range []int{1, 4} {
		ds := gen.DBLP(0.25, 1) // the committed capture's scale and seed
		sh, err := NewSharded(ds.Doc, n)
		if err != nil {
			t.Fatal(err)
		}
		_, qs, err := sh.TopKTraced(context.Background(), query, k, SearchOptions{Algorithm: AlgoJoin})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		sigs[n] = obs.StageSignature(qs.Trace.Spans())
	}
	if sigs[1] != sigs[4] {
		t.Fatalf("stage signature differs across shard counts:\nshards=1:\n%s\nshards=4:\n%s", sigs[1], sigs[4])
	}
	const golden = "stages: merge,settle\nshard-stages: admission,open,join,settle\n"
	if sigs[1] != golden {
		t.Errorf("stage signature = %q, want golden %q", sigs[1], golden)
	}
}

// TestBreakdownSharesSumOnWorkload replays the committed workload's ok
// queries through the traced sharded entry points and checks the
// acceptance invariant: every breakdown's per-stage nanos plus the
// unattributed remainder reconstruct the query's wall time to within
// 1% (the reduction is exact by construction; the tolerance absorbs
// nothing and exists only as the stated acceptance bound).
func TestBreakdownSharesSumOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the committed scale-0.25 workload traced")
	}
	recs, err := qlog.ReadFile("results/workload_sample.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.DBLP(0.25, 1)
	sh, err := NewSharded(ds.Doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range recs {
		if r.Outcome != qlog.OutcomeOK {
			continue
		}
		query := strings.Join(r.Keywords, " ")
		opt := SearchOptions{}
		if r.Semantics == "slca" {
			opt.Semantics = SLCA
		}
		var qs *QueryStats
		switch r.Op {
		case "search":
			_, qs, err = sh.SearchTraced(context.Background(), query, opt)
		case "topk":
			_, qs, err = sh.TopKTraced(context.Background(), query, r.K, opt)
		default:
			continue
		}
		if err != nil {
			t.Fatalf("seq %d (%s %q): %v", r.Seq, r.Op, query, err)
		}
		bd := qs.Stages
		if bd == nil {
			t.Fatalf("seq %d: traced query has no breakdown", r.Seq)
		}
		var sum int64
		for _, s := range bd.Stages {
			sum += s.Nanos
		}
		sum += bd.OtherNs
		diff := sum - bd.WallNs
		if diff < 0 {
			diff = -diff
		}
		if diff > bd.WallNs/100 {
			t.Errorf("seq %d: stage nanos sum %d vs wall %d (off by %d, >1%%)\n%s",
				r.Seq, sum, bd.WallNs, diff, breakdownDump(bd))
		}
		if bd.Dominant == "" {
			t.Errorf("seq %d: no dominant stage in a traced query", r.Seq)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no ok records replayed from the committed workload")
	}
}

func breakdownDump(bd *obs.StageBreakdown) string {
	var b strings.Builder
	for _, s := range bd.Stages {
		fmt.Fprintf(&b, "  %-10s %dns (%.1f%%)\n", s.Stage, s.Nanos, 100*s.Share)
	}
	fmt.Fprintf(&b, "  %-10s %dns\n", "other", bd.OtherNs)
	return b.String()
}
