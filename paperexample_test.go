package xmlsearch

import (
	"math"
	"strings"
	"testing"
)

// figure1XML reconstructs a document consistent with every fact the paper
// states about its running example (Figure 1 and Sections I-II):
//
//   - nodes 1.1.2.2.1 and 1.1.2.3.2 contain {XML} and {data}; their LCA is
//     1.1.2, which is an ELCA/SLCA answer for the query {XML, data};
//   - node 1.1 is the LCA of 1.1.1.1 and 1.1.2.3.2 but NOT an answer: its
//     descendant 1.1.2 is already an ELCA, and after excluding 1.1.2's
//     occurrences the rest of 1.1 only contains {data};
//   - nodes 1.2.3 and 1.3.5.6 are further {XML} occurrences (the paper's
//     Example 3.1 erasure trace), and the root is eventually identified as
//     the last ELCA.
//
// Unnamed structure is filled in minimally.
const figure1XML = `<root>
  <a>
    <b>data</b>
    <c>
      <d>filler</d>
      <e><f>xml</f></e>
      <g><h>pad</h><i>data</i></g>
    </c>
  </a>
  <j>
    <k>pad</k><l>pad</l><m>xml</m>
  </j>
  <n>
    <o>pad</o><p>pad</p><q>pad</q><r>pad</r>
    <s><t>pad</t><u><v>xml</v></u></s>
  </n>
  <w>data</w>
</root>`

func TestPaperFigure1(t *testing.T) {
	idx, err := Open(strings.NewReader(figure1XML))
	if err != nil {
		t.Fatal(err)
	}
	elca, err := idx.Search("xml data", SearchOptions{Semantics: ELCA})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range elca {
		got[r.Dewey] = true
	}
	// 1.1.2 (our <c>) is an answer: it contains xml (1.1.2.2.1) and data
	// (1.1.2.3.2).
	if !got["1.1.2"] {
		t.Errorf("1.1.2 must be an ELCA; got %v", keys(got))
	}
	// 1.1 (our <a>) is NOT an answer: after excluding 1.1.2's occurrences
	// its subtree only contains {data} (the 1.1.1 "data" leaf).
	if got["1.1"] {
		t.Error("1.1 must not be an ELCA (the paper's Section II example)")
	}
	// The root is the last ELCA (Example 3.1): the xml occurrence at
	// 1.2.3 (inside the xml-only <j> branch) pairs with the data
	// occurrence in the xml-free <w> branch only at the root.
	if !got["1"] {
		t.Errorf("the root must be the final ELCA; got %v", keys(got))
	}
	if len(elca) != 2 {
		t.Errorf("expected exactly {1.1.2, 1}; got %v", keys(got))
	}

	// SLCA: 1.1 is not an SLCA because its descendant 1.1.2 is already an
	// LCA (the paper's Section II-A statement); only 1.1.2 survives.
	slca, err := idx.Search("xml data", SearchOptions{Semantics: SLCA})
	if err != nil {
		t.Fatal(err)
	}
	if len(slca) != 1 || slca[0].Dewey != "1.1.2" {
		t.Errorf("SLCA = %v, want exactly 1.1.2", slca)
	}

	// All engines agree on the paper's example.
	for _, algo := range []Algorithm{AlgoStack, AlgoIndexLookup} {
		alt, err := idx.Search("xml data", SearchOptions{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if len(alt) != len(elca) {
			t.Fatalf("algo %d disagrees on the paper example: %d vs %d", algo, len(alt), len(elca))
		}
	}
}

// TestPaperExample41Shape mirrors Example 4.1's setup: scored lists where
// the lowest column yields a result whose score beats both the in-column
// threshold and the upper bound of the columns above, so it is emitted
// without blocking. We verify the behavioural claim (early emission at the
// deepest column) rather than the exact numbers, which depend on the
// paper's unspecified g values.
func TestPaperExample41Shape(t *testing.T) {
	// A tight pair deep in the tree with high tf, plus scattered weaker
	// occurrences higher up.
	doc := `<root>
	  <x><y><z>xml xml data data</z></y></x>
	  <x><y>xml</y></x>
	  <d>data</d>
	</root>`
	idx, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var first Result
	calls := 0
	if err := idx.TopKStream("xml data", 1, SearchOptions{}, func(r Result) bool {
		first = r
		calls++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("expected exactly one emission, got %d", calls)
	}
	if first.Dewey != "1.1.1.1" {
		t.Errorf("the deep tight pair must win: got %s", first.Dewey)
	}
	// Its score must match the full evaluation's best.
	full, err := idx.Search("xml data", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full[0].Score-first.Score) > 1e-9 {
		t.Errorf("streamed score %v, full evaluation best %v", first.Score, full[0].Score)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
