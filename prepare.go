package xmlsearch

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/exec"
)

// Prepared queries and the public face of the query planner. Prepare
// tokenizes and validates a query once; each execution of the returned
// PreparedQuery then skips tokenization, and — for AlgoAuto — resolves
// its engine through the snapshot-keyed plan cache, so a hot repeated
// query pays neither statistics lookup nor cost estimation. The same
// cache also serves ad-hoc Search/TopK/TopKStream calls with AlgoAuto;
// Prepare just shaves the per-call tokenization off on top.

// PreparedQuery is a tokenized, validated query bound to its Index. It
// is immutable and safe for concurrent use by any number of goroutines;
// each execution pins the then-current snapshot, so a prepared query
// observes mutations exactly like an ad-hoc one.
type PreparedQuery struct {
	ix       *Index
	query    string
	keywords []string
	opt      SearchOptions
}

// Prepare tokenizes and validates the query under the given options. It
// returns ErrNoKeywords when no indexable keyword remains and an error
// for an unknown Algorithm; a top-K-only algorithm prepares fine and
// fails only if executed with Search.
func (ix *Index) Prepare(query string, opt SearchOptions) (*PreparedQuery, error) {
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if opt.Algorithm != AlgoAuto && !engines.HasAlgo(int(opt.Algorithm)) {
		return nil, fmt.Errorf("xmlsearch: unknown algorithm %v", opt.Algorithm)
	}
	return &PreparedQuery{ix: ix, query: query, keywords: keywords, opt: opt}, nil
}

// Query returns the original query text.
func (pq *PreparedQuery) Query() string { return pq.query }

// Keywords returns the resolved keywords (shared slice; do not mutate).
func (pq *PreparedQuery) Keywords() []string { return pq.keywords }

// Search evaluates the complete ranked result set.
func (pq *PreparedQuery) Search(ctx context.Context) ([]Result, error) {
	rs, _, _, err := pq.ix.searchObs(ctx, pq.query, pq.keywords, pq.opt, nil)
	return rs, err
}

// TopK returns the k best results in descending score order.
func (pq *PreparedQuery) TopK(ctx context.Context, k int) ([]Result, error) {
	rs, _, _, err := pq.ix.topKObs(ctx, pq.query, pq.keywords, k, pq.opt, nil)
	return rs, err
}

// TopKStream delivers each of the k best results to fn the moment it is
// proven safe; fn returning false cancels the remaining evaluation.
func (pq *PreparedQuery) TopKStream(ctx context.Context, k int, fn func(Result) bool) error {
	_, _, err := pq.ix.topKStreamObs(ctx, pq.query, pq.keywords, k, pq.opt, fn, nil)
	return err
}

// Plan returns the query plan this prepared query would execute with at
// the given k (0 = complete evaluation) against the current snapshot.
func (pq *PreparedQuery) Plan(k int) (*QueryPlan, error) {
	return pq.ix.planFor(pq.keywords, k, pq.opt)
}

// PlanCost is one engine's cost estimate inside a QueryPlan.
type PlanCost struct {
	Engine string  `json:"engine"`
	Cost   float64 `json:"cost"`
}

// QueryPlan is the public view of a planned query: the workload shape
// read from the lexicon, the chosen engine, and — for cost-based plans —
// every capable engine's estimate.
type QueryPlan struct {
	Keywords  []string   `json:"keywords"`
	Lists     []ListInfo `json:"lists"`
	Semantics Semantics  `json:"semantics"`
	// K is the k-bucket the plan was costed for (0 = complete); nearby k
	// values share one cached plan.
	K      int    `json:"k"`
	Engine string `json:"engine"`
	Reason string `json:"reason"`
	// Costs holds every candidate engine's estimate, cheapest chosen;
	// empty for an explicitly selected engine (nothing was costed).
	Costs []PlanCost `json:"costs,omitempty"`
	// Auto reports a cost-based choice; CacheHit whether this plan came
	// from the plan cache rather than being built.
	Auto     bool `json:"auto"`
	CacheHit bool `json:"cache_hit"`
	// Generation is the snapshot generation the plan was built against.
	Generation int64 `json:"generation"`
}

// String renders the plan in a compact human-readable form.
func (p *QueryPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: engine=%s auto=%v cached=%v gen=%d k=%d %v\n", p.Engine, p.Auto, p.CacheHit, p.Generation, p.K, p.Semantics)
	fmt.Fprintf(&b, "  reason: %s\n", p.Reason)
	b.WriteString("  lists:")
	for _, l := range p.Lists {
		fmt.Fprintf(&b, " %s=%d", l.Keyword, l.Rows)
	}
	b.WriteByte('\n')
	if len(p.Costs) > 0 {
		b.WriteString("  costs:")
		for _, c := range p.Costs {
			fmt.Fprintf(&b, " %s=%.4g", c.Engine, c.Cost)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// Plan returns the plan a query would execute with: the trivially
// resolved engine for an explicit opt.Algorithm, the cost-based (and
// cached) choice for AlgoAuto. k = 0 plans the complete evaluation.
// Planning a query never runs it.
func (ix *Index) Plan(query string, k int, opt SearchOptions) (*QueryPlan, error) {
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	return ix.planFor(keywords, k, opt)
}

// planFor builds the public QueryPlan for resolved keywords.
func (ix *Index) planFor(keywords []string, k int, opt SearchOptions) (*QueryPlan, error) {
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), K: k, Decay: effectiveDecay(opt.Decay)}
	if opt.Algorithm != AlgoAuto {
		e, _, err := ix.resolveEngine(s, q, opt.Algorithm, k > 0, nil)
		if err != nil {
			return nil, err
		}
		ix.metrics.Planner.RecordPlan(false)
		out := &QueryPlan{
			Keywords:   keywords,
			Semantics:  opt.Semantics,
			K:          exec.KBucket(k),
			Engine:     e.Name,
			Reason:     "explicitly selected: " + opt.Algorithm.String(),
			Generation: s.gen,
		}
		out.Lists = listInfos(s, keywords)
		return out, nil
	}
	p, hit, err := ix.planAuto(s, q, nil)
	if err != nil {
		return nil, err
	}
	out := &QueryPlan{
		Keywords:   p.Keywords,
		Semantics:  Semantics(p.Semantics),
		K:          p.K,
		Engine:     p.Engine,
		Reason:     p.Reason,
		Auto:       p.Auto,
		CacheHit:   hit,
		Generation: p.Generation,
	}
	for _, l := range p.Lists {
		out.Lists = append(out.Lists, ListInfo{Keyword: l.Keyword, Rows: l.Rows})
	}
	for _, c := range p.Costs {
		out.Costs = append(out.Costs, PlanCost{Engine: c.Engine, Cost: c.Cost})
	}
	return out, nil
}

// listInfos reads the per-keyword row counts off the snapshot's lexicon.
func listInfos(s *snapshot, keywords []string) []ListInfo {
	out := make([]ListInfo, len(keywords))
	for i, w := range keywords {
		out[i] = ListInfo{Keyword: w, Rows: s.store.DocFreq(w)}
	}
	return out
}
