package xmlsearch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Context-honoring entry points. Each engine checks the context
// periodically inside its evaluation loops (every few hundred to few
// thousand inner-loop iterations — frequent enough that cancellation lands
// within microseconds on real indexes, rare enough to stay off the join's
// hot-path profile) and aborts with ctx.Err(). An already-cancelled
// context returns before any list is scanned.
//
// These entry points also form the public API's panic boundary: a panic
// out of the evaluation engines — possible only through corrupted
// in-memory state, e.g. an index mutated concurrently with a query —
// is contained and surfaced as an error wrapping ErrInternal rather than
// taking down the caller's process.
//
// Every public entry point funnels through a private *Obs variant that
// threads an optional *obs.Trace into the engines (nil — the untraced
// default — keeps the engines' instrumentation at a single pointer check
// per site) and records the query into the index's metrics registry.
// Engine dispatch is a registry lookup (see engines.go): an explicit
// Algorithm resolves without planning, AlgoAuto consults the cost-based
// planner through the snapshot-keyed plan cache.

// ErrInternal is wrapped by errors reporting a contained engine panic.
// Results accompanying such an error must be discarded.
var ErrInternal = errors.New("xmlsearch: internal error")

// guard converts a panic escaping an engine into an ErrInternal error.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrInternal, r)
	}
}

// searchEngineSlot maps an Algorithm to its metrics slot for complete
// evaluations — the attribution used before the engine is resolved (and
// after, for every explicit algorithm). AlgoAuto is attributed to the
// engine the planner picks; its pre-plan default is the join slot.
func searchEngineSlot(a Algorithm) obs.Engine {
	return engines.ObsFor(int(a), false, obs.EngineJoin)
}

// topKEngineSlot maps an Algorithm to its metrics slot for top-K
// evaluations; AlgoJoin selects the top-K star join rather than the
// complete join.
func topKEngineSlot(a Algorithm) obs.Engine {
	return engines.ObsFor(int(a), true, obs.EngineJoin)
}

// resolveEngine picks the engine for a resolved query: a registry lookup
// for an explicit algorithm (plan == nil), the cost-based planner —
// through the plan cache — for AlgoAuto.
func (ix *Index) resolveEngine(s *snapshot, q exec.Query, algo Algorithm, topK bool, tr *obs.Trace) (*queryEngine, *exec.Plan, error) {
	if algo != AlgoAuto {
		if e := engines.ForAlgo(int(algo), topK); e != nil {
			return e, nil, nil
		}
		if engines.HasAlgo(int(algo)) {
			return nil, nil, fmt.Errorf("xmlsearch: algorithm %v is top-K only; use TopK", algo)
		}
		return nil, nil, fmt.Errorf("xmlsearch: unknown algorithm %v", algo)
	}
	p, _, err := ix.planAuto(s, q, tr)
	if err != nil {
		return nil, nil, err
	}
	e := engines.ByName(p.Engine)
	if e == nil {
		return nil, nil, fmt.Errorf("xmlsearch: planned engine %q is not registered", p.Engine)
	}
	return e, p, nil
}

// planAuto returns the cost-based plan for the query against the pinned
// snapshot, consulting the generation-keyed plan cache first. The
// reported hit tells whether planning was skipped entirely.
func (ix *Index) planAuto(s *snapshot, q exec.Query, tr *obs.Trace) (*exec.Plan, bool, error) {
	key := exec.CacheKey(q.Keywords, q.Semantics, exec.KBucket(q.K), s.gen)
	if p := ix.plans.Get(key); p != nil {
		if tr != nil {
			tr.PlanSwitch("auto:"+p.Engine+" (cached)", 0, len(q.Keywords), q.K)
		}
		return p, true, nil
	}
	// Cost the k-bucket, not the exact k, so the cached plan is reusable
	// by every query in the bucket; the engine still runs the exact k.
	bq := q
	bq.K = exec.KBucket(q.K)
	p := engines.Plan(bq, s.planStats(q.Keywords), s.gen)
	if p == nil {
		return nil, false, fmt.Errorf("xmlsearch: no registered engine can serve this query")
	}
	ix.metrics.Planner.RecordPlan(true)
	ix.plans.Put(key, p)
	if tr != nil {
		tr.PlanSwitch("auto:"+p.Engine, 0, len(q.Keywords), q.K)
	}
	return p, false, nil
}

// planStats reads the planner's statistics from the snapshot: per-keyword
// row counts straight off the lexicon — no list is decoded — plus the
// document shape.
func (s *snapshot) planStats(keywords []string) exec.Stats {
	st := exec.Stats{Nodes: s.doc.Len(), Depth: s.doc.Depth}
	st.Lists = make([]exec.ListStat, len(keywords))
	for i, w := range keywords {
		st.Lists[i] = exec.ListStat{Keyword: w, Rows: s.store.DocFreq(w)}
	}
	return st
}

// SearchContext is Search honoring a context: cancellation or deadline
// expiry aborts the evaluation with ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, _, err := ix.searchObs(ctx, query, nil, opt, nil)
	return rs, err
}

// finishQuery is the shared tail of every query path: engine metrics and
// slow-query log, then — when a trace store is installed and the query
// was traced — the tail-sampling offer, linking the retained trace ID
// into the engine's latency histogram as an exemplar.
func (ix *Index) finishQuery(e obs.Engine, query string, k int, elapsed time.Duration, results int, err error, tr *obs.Trace) {
	ix.metrics.RecordQuery(e, query, k, elapsed, results, err, tr)
	ts := ix.traces.Load()
	if ts == nil || tr == nil {
		return
	}
	if id := ts.Add(e, query, k, elapsed, results, err, tr); id != 0 {
		if em := ix.metrics.Engine(e); em != nil {
			em.Latency.SetExemplar(elapsed, int64(id))
		}
	}
}

// searchObs wraps searchEval with the panic guard and per-query metrics
// accounting (latency histogram, result/error/cancellation counters, the
// slow-query log, and tail-sampled trace capture). kws, when non-nil,
// are the query's pre-tokenized keywords (the prepared-query path); nil
// tokenizes query. The resolved metrics slot is returned for the traced
// entry points.
func (ix *Index) searchObs(ctx context.Context, query string, kws []string, opt SearchOptions, tr *obs.Trace) (rs []Result, eng obs.Engine, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	eng = searchEngineSlot(opt.Algorithm)
	defer func() {
		ix.pinned.Add(-1)
		ix.finishQuery(eng, query, 0, time.Since(start), len(rs), err, tr)
	}()
	defer guard(&err)
	return ix.searchEval(ctx, query, kws, opt, tr)
}

// searchEval pins the current snapshot, resolves the engine through the
// registry (planning cost-based for AlgoAuto), and runs the complete
// evaluation. Every list, node lookup, and materialization of the query
// comes from the one pinned snapshot, so a concurrently published
// mutation cannot tear the evaluation.
func (ix *Index) searchEval(ctx context.Context, query string, kws []string, opt SearchOptions, tr *obs.Trace) (rs []Result, eng obs.Engine, err error) {
	eng = searchEngineSlot(opt.Algorithm)
	if ctx == nil {
		ctx = context.Background()
	}
	keywords := kws
	if keywords == nil {
		keywords = Keywords(query)
	}
	if len(keywords) == 0 {
		return nil, eng, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, eng, err
	}
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), Decay: effectiveDecay(opt.Decay)}
	e, _, err := ix.resolveEngine(s, q, opt.Algorithm, false, tr)
	if err != nil {
		return nil, eng, err
	}
	eng = e.Obs
	rs, err = e.Run(ctx, s, q, tr)
	return rs, eng, err
}

// TopKContext is TopK honoring a context: cancellation or deadline expiry
// aborts the evaluation with ctx.Err() without completing the scan.
func (ix *Index) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	rs, _, err := ix.topKObs(ctx, query, nil, k, opt, nil)
	return rs, err
}

// topKObs wraps topKEval with the panic guard and per-query metrics
// accounting.
func (ix *Index) topKObs(ctx context.Context, query string, kws []string, k int, opt SearchOptions, tr *obs.Trace) (rs []Result, eng obs.Engine, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	eng = topKEngineSlot(opt.Algorithm)
	defer func() {
		ix.pinned.Add(-1)
		ix.finishQuery(eng, query, k, time.Since(start), len(rs), err, tr)
	}()
	defer guard(&err)
	return ix.topKEval(ctx, query, kws, k, opt, tr)
}

// topKEval resolves the engine through the registry and runs the top-K
// evaluation against the pinned snapshot.
func (ix *Index) topKEval(ctx context.Context, query string, kws []string, k int, opt SearchOptions, tr *obs.Trace) (rs []Result, eng obs.Engine, err error) {
	eng = topKEngineSlot(opt.Algorithm)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return nil, eng, fmt.Errorf("xmlsearch: k must be positive")
	}
	keywords := kws
	if keywords == nil {
		keywords = Keywords(query)
	}
	if len(keywords) == 0 {
		return nil, eng, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, eng, err
	}
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), K: k, Decay: effectiveDecay(opt.Decay)}
	e, _, err := ix.resolveEngine(s, q, opt.Algorithm, true, tr)
	if err != nil {
		return nil, eng, err
	}
	eng = e.Obs
	rs, err = e.Run(ctx, s, q, tr)
	return rs, eng, err
}

// TopKStreamContext is TopKStream honoring a context: results already
// proven safe are delivered to fn before cancellation is observed; the
// remaining evaluation then aborts with ctx.Err().
func (ix *Index) TopKStreamContext(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) error {
	_, err := ix.topKStreamObs(ctx, query, nil, k, opt, fn, nil)
	return err
}

// topKStreamObs runs the streaming top-K star join (the registry's one
// streaming-capable engine, regardless of opt.Algorithm), guarded and
// metered like the other entry points. It returns the number of results
// delivered.
func (ix *Index) topKStreamObs(ctx context.Context, query string, kws []string, k int, opt SearchOptions, fn func(Result) bool, tr *obs.Trace) (delivered int, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	defer func() {
		ix.pinned.Add(-1)
		ix.finishQuery(obs.EngineTopK, query, k, time.Since(start), delivered, err, tr)
	}()
	defer guard(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return 0, fmt.Errorf("xmlsearch: k must be positive")
	}
	if fn == nil {
		return 0, fmt.Errorf("xmlsearch: nil callback")
	}
	keywords := kws
	if keywords == nil {
		keywords = Keywords(query)
	}
	if len(keywords) == 0 {
		return 0, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), K: k, Decay: effectiveDecay(opt.Decay)}
	return engines.ForStream().Stream(ctx, s, q, tr, fn)
}

// SearchContext is Corpus.Search honoring a context.
func (c *Corpus) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, err := c.Index.SearchContext(ctx, query, opt)
	if err != nil {
		return nil, err
	}
	return dropSyntheticRoot(rs), nil
}

// TopKContext is Corpus.TopK honoring a context.
func (c *Corpus) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	// Fetch one extra in case the synthetic root occupies a slot.
	rs, err := c.Index.TopKContext(ctx, query, k+1, opt)
	if err != nil {
		return nil, err
	}
	rs = dropSyntheticRoot(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs, nil
}
