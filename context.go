package xmlsearch

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/stack"
	"repro/internal/topk"
)

// Context-honoring entry points. Each engine checks the context
// periodically inside its evaluation loops (every few hundred to few
// thousand inner-loop iterations — frequent enough that cancellation lands
// within microseconds on real indexes, rare enough to stay off the join's
// hot-path profile) and aborts with ctx.Err(). An already-cancelled
// context returns before any list is scanned.
//
// These entry points also form the public API's panic boundary: a panic
// out of the evaluation engines — possible only through corrupted
// in-memory state, e.g. an index mutated concurrently with a query —
// is contained and surfaced as an error wrapping ErrInternal rather than
// taking down the caller's process.

// ErrInternal is wrapped by errors reporting a contained engine panic.
// Results accompanying such an error must be discarded.
var ErrInternal = errors.New("xmlsearch: internal error")

// guard converts a panic escaping an engine into an ErrInternal error.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrInternal, r)
	}
}

// SearchContext is Search honoring a context: cancellation or deadline
// expiry aborts the evaluation with ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, query string, opt SearchOptions) (_ []Result, err error) {
	defer guard(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	decay := effectiveDecay(opt.Decay)
	switch opt.Algorithm {
	case AlgoJoin:
		lists := make([]*colstore.List, len(keywords))
		for i, w := range keywords {
			lists[i] = ix.store.List(w)
		}
		rs, _, err := core.EvaluateCtx(ctx, lists, core.Options{Semantics: coreSem(opt.Semantics), Decay: decay})
		if err != nil {
			return nil, err
		}
		core.SortByScore(rs)
		return ix.materializeJoin(rs), nil
	case AlgoStack:
		rs, _, err := stack.EvaluateCtx(ctx, ix.invLists(keywords), stackSem(opt.Semantics), decay)
		if err != nil {
			return nil, err
		}
		stack.SortByScore(rs)
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, ix.materializeDewey(r.ID, r.Score))
		}
		return out, nil
	case AlgoIndexLookup:
		rs, _, err := ixlookup.EvaluateCtx(ctx, ix.invLists(keywords), ixlookupSem(opt.Semantics), decay)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, ix.materializeDewey(r.ID, r.Score))
		}
		sortResults(out)
		return out, nil
	case AlgoRDIL, AlgoHybrid:
		return nil, fmt.Errorf("xmlsearch: algorithm %d is top-K only; use TopK", opt.Algorithm)
	default:
		return nil, fmt.Errorf("xmlsearch: unknown algorithm %d", opt.Algorithm)
	}
}

// TopKContext is TopK honoring a context: cancellation or deadline expiry
// aborts the evaluation with ctx.Err() without completing the scan.
func (ix *Index) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) (_ []Result, err error) {
	defer guard(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	decay := effectiveDecay(opt.Decay)
	switch opt.Algorithm {
	case AlgoJoin:
		lists := make([]*colstore.TKList, len(keywords))
		for i, w := range keywords {
			lists[i] = ix.store.TopKList(w)
		}
		rs, _, err := topk.EvaluateCtx(ctx, lists, topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k})
		if err != nil {
			return nil, err
		}
		return ix.materializeJoin(rs), nil
	case AlgoRDIL:
		ix.ensureInv()
		rs, _, err := ix.rdilIdx.TopKCtx(ctx, keywords, rdilSem(opt.Semantics), decay, k)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, ix.materializeDewey(r.ID, r.Score))
		}
		return out, nil
	case AlgoHybrid:
		colLists := make([]*colstore.List, len(keywords))
		tkLists := make([]*colstore.TKList, len(keywords))
		for i, w := range keywords {
			colLists[i] = ix.store.List(w)
			tkLists[i] = ix.store.TopKList(w)
		}
		rs, _, err := topk.EvaluateHybridCtx(ctx, colLists, tkLists,
			topk.HybridOptions{Semantics: coreSem(opt.Semantics), Decay: decay, K: k})
		if err != nil {
			return nil, err
		}
		return ix.materializeJoin(rs), nil
	default:
		all, err := ix.SearchContext(ctx, query, opt)
		if err != nil {
			return nil, err
		}
		if k < len(all) {
			all = all[:k]
		}
		return all, nil
	}
}

// TopKStreamContext is TopKStream honoring a context: results already
// proven safe are delivered to fn before cancellation is observed; the
// remaining evaluation then aborts with ctx.Err().
func (ix *Index) TopKStreamContext(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) (err error) {
	defer guard(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return fmt.Errorf("xmlsearch: k must be positive")
	}
	if fn == nil {
		return fmt.Errorf("xmlsearch: nil callback")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	decay := effectiveDecay(opt.Decay)
	lists := make([]*colstore.TKList, len(keywords))
	for i, w := range keywords {
		lists[i] = ix.store.TopKList(w)
	}
	_, _, err = topk.EvaluateFuncCtx(ctx, lists, topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k},
		func(r core.Result) bool {
			n := ix.doc.NodeByJDewey(r.Level, r.Value)
			if n == nil {
				return true
			}
			return fn(ix.materializeNode(n, r.Score))
		})
	return err
}

// SearchContext is Corpus.Search honoring a context.
func (c *Corpus) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, err := c.Index.SearchContext(ctx, query, opt)
	if err != nil {
		return nil, err
	}
	return dropSyntheticRoot(rs), nil
}

// TopKContext is Corpus.TopK honoring a context.
func (c *Corpus) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	// Fetch one extra in case the synthetic root occupies a slot.
	rs, err := c.Index.TopKContext(ctx, query, k+1, opt)
	if err != nil {
		return nil, err
	}
	rs = dropSyntheticRoot(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs, nil
}
