package xmlsearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/budget"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// Context-honoring entry points. Each engine checks the context
// periodically inside its evaluation loops (every few hundred to few
// thousand inner-loop iterations — frequent enough that cancellation lands
// within microseconds on real indexes, rare enough to stay off the join's
// hot-path profile) and aborts with ctx.Err(). An already-cancelled
// context returns before any list is scanned.
//
// These entry points also form the public API's panic boundary: a panic
// out of the evaluation engines — possible only through corrupted
// in-memory state, e.g. an index mutated concurrently with a query —
// is contained and surfaced as an error wrapping ErrInternal rather than
// taking down the caller's process.
//
// Every public entry point funnels through a private *Obs variant that
// threads an optional *obs.Trace into the engines (nil — the untraced
// default — keeps the engines' instrumentation at a single pointer check
// per site) and records the query into the index's metrics registry.
// Engine dispatch is a registry lookup (see engines.go): an explicit
// Algorithm resolves without planning, AlgoAuto consults the cost-based
// planner through the snapshot-keyed plan cache.

// ErrInternal is wrapped by errors reporting a contained engine panic.
// Results accompanying such an error must be discarded.
var ErrInternal = errors.New("xmlsearch: internal error")

// ErrDeadlineExceeded classifies a query aborted because its deadline —
// SearchOptions.Timeout or a deadline already on the caller's context —
// expired. Errors wrapping it also wrap context.DeadlineExceeded.
var ErrDeadlineExceeded = errors.New("xmlsearch: query deadline exceeded")

// ErrCancelled classifies a query aborted because the caller's context
// was cancelled (not by deadline expiry). Errors wrapping it also wrap
// context.Canceled.
var ErrCancelled = errors.New("xmlsearch: query cancelled")

// ErrBudgetExceeded classifies a query aborted because it exhausted a
// resource budget (SearchOptions.MaxDecodedBytes or MaxCandidates). It is
// the budget package's sentinel; the returned error is a *budget.Error
// carrying which dimension tripped and by how much.
var ErrBudgetExceeded = budget.ErrExceeded

// classifyErr maps the raw abort cause coming out of an engine to the
// public taxonomy: deadline expiry and cancellation get distinct
// sentinels (both still matching their context sentinel, so existing
// errors.Is checks keep working); budget errors already carry theirs.
func classifyErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, ErrCancelled):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return err
}

// isAbort reports whether a classified error is a deadline, cancellation,
// or budget abort — the causes a certified-partial answer may settle.
func isAbort(err error) bool {
	return errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrCancelled) || errors.Is(err, ErrBudgetExceeded)
}

// withTimeout derives the evaluation context from the caller's: the
// option timeout is layered on (never replacing an earlier caller
// deadline — context.WithTimeout keeps the tighter of the two).
func withTimeout(ctx context.Context, opt SearchOptions) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		return context.WithTimeout(ctx, opt.Timeout)
	}
	return ctx, func() {}
}

// queryBudget builds the per-query resource budget (nil = unlimited).
// With the flight recorder on, an otherwise-unbudgeted query gets an
// enforcement-free metering budget instead of nil, so its record still
// carries the resource profile (decoded bytes, cache hits, candidates);
// with the recorder off, unbudgeted queries keep the nil no-op budget.
func (ix *Index) queryBudget(opt SearchOptions) *budget.B {
	b := budget.New(opt.MaxDecodedBytes, opt.MaxCandidates)
	if b == nil && ix.qlog.Load().Enabled() {
		b = budget.Meter()
	}
	return b
}

// settle is the shared abort epilogue: it classifies the error, counts
// budget trips, and — when the caller opted into partial answers and the
// engine can bound its unseen results — converts the abort into a
// successful certified-partial answer. It returns the results and error
// for the caller plus the original trip error for the metrics/trace path
// (nil when the query genuinely completed), so a settled partial query is
// still recorded as aborted by the observability layer.
func (ix *Index) settle(rs []Result, meta exec.RunMeta, caps exec.Capability, opt SearchOptions, err error) ([]Result, exec.RunMeta, error, error) {
	if err == nil {
		return rs, meta, nil, nil
	}
	err = classifyErr(err)
	var berr *budget.Error
	if errors.As(err, &berr) {
		switch berr.Resource {
		case budget.DecodedBytes:
			ix.metrics.Serving.BudgetDecodedTrips.Add(1)
		case budget.Candidates:
			ix.metrics.Serving.BudgetCandidateTrips.Add(1)
		}
	}
	if !opt.AllowPartial || caps&exec.CapPartial == 0 || !isAbort(err) {
		return nil, meta, err, err
	}
	if !meta.Partial {
		// Aborted before the engine reported a bound (e.g. while opening
		// lists): nothing is certified.
		meta = exec.RunMeta{Partial: true, UnseenBound: math.Inf(1)}
	}
	for i := range rs {
		rs[i].Exact = rs[i].Score >= meta.UnseenBound
	}
	ix.metrics.Serving.PartialQueries.Add(1)
	return rs, meta, nil, err
}

// guard converts a panic escaping an engine into an ErrInternal error.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrInternal, r)
	}
}

// searchEngineSlot maps an Algorithm to its metrics slot for complete
// evaluations — the attribution used before the engine is resolved (and
// after, for every explicit algorithm). AlgoAuto is attributed to the
// engine the planner picks; its pre-plan default is the join slot.
func searchEngineSlot(a Algorithm) obs.Engine {
	return engines.ObsFor(int(a), false, obs.EngineJoin)
}

// topKEngineSlot maps an Algorithm to its metrics slot for top-K
// evaluations; AlgoJoin selects the top-K star join rather than the
// complete join.
func topKEngineSlot(a Algorithm) obs.Engine {
	return engines.ObsFor(int(a), true, obs.EngineJoin)
}

// resolveEngine picks the engine for a resolved query: a registry lookup
// for an explicit algorithm (plan == nil), the cost-based planner —
// through the plan cache — for AlgoAuto.
func (ix *Index) resolveEngine(s *snapshot, q exec.Query, algo Algorithm, topK bool, tr *obs.Trace) (*queryEngine, *exec.Plan, error) {
	sp := tr.Stage(obs.StagePlan)
	defer tr.End(sp)
	if algo != AlgoAuto {
		if e := engines.ForAlgo(int(algo), topK); e != nil {
			return e, nil, nil
		}
		if engines.HasAlgo(int(algo)) {
			return nil, nil, fmt.Errorf("xmlsearch: algorithm %v is top-K only; use TopK", algo)
		}
		return nil, nil, fmt.Errorf("xmlsearch: unknown algorithm %v", algo)
	}
	p, _, err := ix.planAuto(s, q, tr)
	if err != nil {
		return nil, nil, err
	}
	e := engines.ByName(p.Engine)
	if e == nil {
		return nil, nil, fmt.Errorf("xmlsearch: planned engine %q is not registered", p.Engine)
	}
	return e, p, nil
}

// planAuto returns the cost-based plan for the query against the pinned
// snapshot, consulting the generation-keyed plan cache first. The
// reported hit tells whether planning was skipped entirely.
func (ix *Index) planAuto(s *snapshot, q exec.Query, tr *obs.Trace) (*exec.Plan, bool, error) {
	key := exec.CacheKey(q.Keywords, q.Semantics, exec.KBucket(q.K), s.gen)
	if p := ix.plans.Get(key); p != nil {
		if tr != nil {
			tr.PlanSwitch("auto:"+p.Engine+" (cached)", 0, len(q.Keywords), q.K)
		}
		return p, true, nil
	}
	// Cost the k-bucket, not the exact k, so the cached plan is reusable
	// by every query in the bucket; the engine still runs the exact k.
	bq := q
	bq.K = exec.KBucket(q.K)
	p := engines.Plan(bq, s.planStats(q.Keywords), s.gen)
	if p == nil {
		return nil, false, fmt.Errorf("xmlsearch: no registered engine can serve this query")
	}
	ix.metrics.Planner.RecordPlan(true)
	ix.plans.Put(key, p)
	if tr != nil {
		tr.PlanSwitch("auto:"+p.Engine, 0, len(q.Keywords), q.K)
	}
	return p, false, nil
}

// planStats reads the planner's statistics from the snapshot: per-keyword
// row counts straight off the lexicon — no list is decoded — plus the
// document shape.
func (s *snapshot) planStats(keywords []string) exec.Stats {
	st := exec.Stats{Nodes: s.docLen(), Depth: s.docDepth()}
	st.Lists = make([]exec.ListStat, len(keywords))
	for i, w := range keywords {
		st.Lists[i] = exec.ListStat{Keyword: w, Rows: s.store.DocFreq(w)}
	}
	return st
}

// SearchContext is Search honoring a context: cancellation or deadline
// expiry aborts the evaluation with an error matching ErrCancelled or
// ErrDeadlineExceeded — unless opt.AllowPartial settles the abort into a
// certified-partial answer.
func (ix *Index) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, _, _, err := ix.searchObs(ctx, query, nil, opt, nil)
	return rs, err
}

// qinfo carries what the flight recorder needs beyond the metrics path's
// arguments: the entry point, the query's budget (doubling as its
// resource profile), the result-set fingerprint, and the error the
// caller actually saw (nil for a settled partial answer, unlike the trip
// error the metrics path records).
type qinfo struct {
	op      string
	opt     SearchOptions
	bdg     *budget.B
	fp      qlog.Hash
	hasFP   bool
	visible error
}

// outcomeClass maps a finished query to its flight-recorder outcome:
// ferr is the trip-or-error the metrics path saw, visible the error the
// caller saw. A settled certified-partial answer has ferr non-nil but
// visible nil.
func outcomeClass(visible, ferr error) string {
	switch {
	case ferr == nil:
		return qlog.OutcomeOK
	case visible == nil:
		return qlog.OutcomePartial
	case errors.Is(ferr, ErrDeadlineExceeded):
		return qlog.OutcomeDeadline
	case errors.Is(ferr, ErrCancelled):
		return qlog.OutcomeCancelled
	case errors.Is(ferr, ErrBudgetExceeded):
		return qlog.OutcomeBudget
	default:
		return qlog.OutcomeError
	}
}

// resultsHash folds a result slice into the deterministic fingerprint.
func resultsHash(rs []Result) qlog.Hash {
	h := qlog.NewHash()
	for _, r := range rs {
		h = h.Result(r.Dewey, r.Score)
	}
	return h
}

// finishQuery is the shared tail of every query path: engine metrics and
// slow-query log; then — when a trace store is installed and the query
// was traced — the tail-sampling offer, linking the retained trace ID
// into the engine's latency histogram as an exemplar; then — when the
// flight recorder is on — the query's record, offered without blocking.
func (ix *Index) finishQuery(e obs.Engine, query string, k int, elapsed time.Duration, results int, err error, tr *obs.Trace, qi qinfo) {
	ix.metrics.RecordQuery(e, query, k, elapsed, results, err, tr)
	bd := recordBreakdown(ix.metrics, e, elapsed, tr)
	var traceID uint64
	if ts := ix.traces.Load(); ts != nil && tr != nil {
		if id := ts.Add(e, query, k, elapsed, results, err, tr); id != 0 {
			traceID = id
			if em := ix.metrics.Engine(e); em != nil {
				em.Latency.SetExemplar(elapsed, int64(id))
			}
		}
	}
	r := ix.qlog.Load()
	if !r.Enabled() {
		return
	}
	rec := qlog.Record{
		Op:           qi.op,
		Keywords:     Keywords(query),
		Semantics:    semLabel(qi.opt.Semantics),
		K:            k,
		Algo:         qi.opt.Algorithm.String(),
		Engine:       e.String(),
		Outcome:      outcomeClass(qi.visible, err),
		DurationNs:   elapsed.Nanoseconds(),
		Results:      results,
		DecodedBytes: qi.bdg.Decoded(),
		CacheHits:    qi.bdg.CacheHits(),
		Candidates:   qi.bdg.Candidates(),
		TraceID:      traceID,
	}
	if qi.hasFP {
		rec.Fingerprint = qi.fp.String()
	}
	annotateStages(&rec, bd)
	switch {
	case qi.visible != nil:
		rec.Err = qi.visible.Error()
	case err != nil:
		// Settled partial: record the abort that was converted.
		rec.Err = err.Error()
	}
	r.Offer(rec)
}

// recordBreakdown reduces a traced query's timeline to its stage
// breakdown and folds it into the attribution counters. Untraced queries
// return nil: attribution exists only where a timeline exists.
func recordBreakdown(m *obs.Metrics, e obs.Engine, elapsed time.Duration, tr *obs.Trace) *obs.StageBreakdown {
	if tr == nil || len(tr.Spans()) == 0 {
		return nil
	}
	bd := obs.BreakdownOf(tr.Spans(), elapsed)
	m.Stage.RecordBreakdown(e, &bd)
	return &bd
}

// annotateStages copies a breakdown's per-stage nanos and straggler shard
// onto a flight-recorder record. StragglerShard is stored 1-based so that
// omitempty elides it for unscattered (and untraced) queries.
func annotateStages(rec *qlog.Record, bd *obs.StageBreakdown) {
	if bd == nil || len(bd.Stages) == 0 {
		return
	}
	rec.StageNs = make(map[string]int64, len(bd.Stages))
	for _, s := range bd.Stages {
		rec.StageNs[s.Stage] = s.Nanos
	}
	if bd.Straggler >= 0 {
		rec.StragglerShard = bd.Straggler + 1
	}
}

// semLabel renders the semantics in the flight-recorder's lowercase form.
func semLabel(s Semantics) string {
	if s == SLCA {
		return "slca"
	}
	return "elca"
}

// searchObs wraps searchEval with the panic guard and per-query metrics
// accounting (latency histogram, result/error/cancellation counters, the
// slow-query log, and tail-sampled trace capture). kws, when non-nil,
// are the query's pre-tokenized keywords (the prepared-query path); nil
// tokenizes query. The resolved metrics slot is returned for the traced
// entry points.
func (ix *Index) searchObs(ctx context.Context, query string, kws []string, opt SearchOptions, tr *obs.Trace) (rs []Result, meta exec.RunMeta, eng obs.Engine, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	eng = searchEngineSlot(opt.Algorithm)
	bdg := ix.queryBudget(opt)
	var trip error
	defer func() {
		ix.pinned.Add(-1)
		// A settled partial query returns nil to the caller but is recorded
		// under its original abort cause, so the cancellation counters and
		// the trace store's always-retain rule still see it.
		ferr := err
		if ferr == nil && trip != nil {
			ferr = trip
		}
		qi := qinfo{op: "search", opt: opt, bdg: bdg, visible: err}
		if err == nil {
			qi.fp, qi.hasFP = resultsHash(rs), true
		}
		ix.finishQuery(eng, query, 0, time.Since(start), len(rs), ferr, tr, qi)
	}()
	defer guard(&err)
	ctx, cancel := withTimeout(ctx, opt)
	defer cancel()
	var caps exec.Capability
	rs, meta, caps, eng, err = ix.searchEval(ctx, query, kws, opt, bdg, tr)
	ssp := tr.Stage(obs.StageSettle)
	rs, meta, err, trip = ix.settle(rs, meta, caps, opt, err)
	tr.End(ssp)
	return rs, meta, eng, err
}

// searchEval pins the current snapshot, resolves the engine through the
// registry (planning cost-based for AlgoAuto), and runs the complete
// evaluation. Every list, node lookup, and materialization of the query
// comes from the one pinned snapshot, so a concurrently published
// mutation cannot tear the evaluation.
func (ix *Index) searchEval(ctx context.Context, query string, kws []string, opt SearchOptions, bdg *budget.B, tr *obs.Trace) (rs []Result, meta exec.RunMeta, caps exec.Capability, eng obs.Engine, err error) {
	eng = searchEngineSlot(opt.Algorithm)
	if ctx == nil {
		ctx = context.Background()
	}
	keywords := kws
	if keywords == nil {
		keywords = Keywords(query)
	}
	if len(keywords) == 0 {
		return nil, meta, caps, eng, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, meta, caps, eng, err
	}
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), Decay: effectiveDecay(opt.Decay),
		Budget: bdg, AllowPartial: opt.AllowPartial}
	e, _, err := ix.resolveEngine(s, q, opt.Algorithm, false, tr)
	if err != nil {
		return nil, meta, caps, eng, err
	}
	eng, caps = e.Obs, e.Caps
	rs, meta, err = e.Run(ctx, s, q, tr)
	return rs, meta, caps, eng, err
}

// TopKContext is TopK honoring a context: cancellation or deadline expiry
// aborts the evaluation with an error matching ErrCancelled or
// ErrDeadlineExceeded without completing the scan — unless
// opt.AllowPartial settles the abort into a certified-partial answer.
func (ix *Index) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	rs, _, _, err := ix.topKObs(ctx, query, nil, k, opt, nil)
	return rs, err
}

// topKObs wraps topKEval with the panic guard and per-query metrics
// accounting.
func (ix *Index) topKObs(ctx context.Context, query string, kws []string, k int, opt SearchOptions, tr *obs.Trace) (rs []Result, meta exec.RunMeta, eng obs.Engine, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	eng = topKEngineSlot(opt.Algorithm)
	bdg := ix.queryBudget(opt)
	var trip error
	defer func() {
		ix.pinned.Add(-1)
		ferr := err
		if ferr == nil && trip != nil {
			ferr = trip
		}
		qi := qinfo{op: "topk", opt: opt, bdg: bdg, visible: err}
		if err == nil {
			qi.fp, qi.hasFP = resultsHash(rs), true
		}
		ix.finishQuery(eng, query, k, time.Since(start), len(rs), ferr, tr, qi)
	}()
	defer guard(&err)
	ctx, cancel := withTimeout(ctx, opt)
	defer cancel()
	var caps exec.Capability
	rs, meta, caps, eng, err = ix.topKEval(ctx, query, kws, k, opt, bdg, tr)
	ssp := tr.Stage(obs.StageSettle)
	rs, meta, err, trip = ix.settle(rs, meta, caps, opt, err)
	tr.End(ssp)
	return rs, meta, eng, err
}

// topKEval resolves the engine through the registry and runs the top-K
// evaluation against the pinned snapshot.
func (ix *Index) topKEval(ctx context.Context, query string, kws []string, k int, opt SearchOptions, bdg *budget.B, tr *obs.Trace) (rs []Result, meta exec.RunMeta, caps exec.Capability, eng obs.Engine, err error) {
	eng = topKEngineSlot(opt.Algorithm)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return nil, meta, caps, eng, fmt.Errorf("xmlsearch: k must be positive")
	}
	keywords := kws
	if keywords == nil {
		keywords = Keywords(query)
	}
	if len(keywords) == 0 {
		return nil, meta, caps, eng, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, meta, caps, eng, err
	}
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), K: k, Decay: effectiveDecay(opt.Decay),
		Budget: bdg, AllowPartial: opt.AllowPartial}
	e, _, err := ix.resolveEngine(s, q, opt.Algorithm, true, tr)
	if err != nil {
		return nil, meta, caps, eng, err
	}
	eng, caps = e.Obs, e.Caps
	rs, meta, err = e.Run(ctx, s, q, tr)
	return rs, meta, caps, eng, err
}

// TopKStreamContext is TopKStream honoring a context: results already
// proven safe are delivered to fn before cancellation is observed; the
// remaining evaluation then aborts with ctx.Err().
func (ix *Index) TopKStreamContext(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) error {
	_, _, err := ix.topKStreamObs(ctx, query, nil, k, opt, fn, nil)
	return err
}

// topKStreamObs runs the streaming top-K star join (the registry's one
// streaming-capable engine, regardless of opt.Algorithm), guarded and
// metered like the other entry points. It returns the number of results
// delivered. Every streamed result was threshold-proven before delivery,
// so with opt.AllowPartial an abort simply ends the stream cleanly (nil
// error); the returned RunMeta reports that the answer is partial.
func (ix *Index) topKStreamObs(ctx context.Context, query string, kws []string, k int, opt SearchOptions, fn func(Result) bool, tr *obs.Trace) (delivered int, meta exec.RunMeta, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	bdg := ix.queryBudget(opt)
	// With the recorder on, wrap the callback to fold each streamed result
	// into the fingerprint as it is delivered — streamed results are never
	// re-materialized, so the hash must accumulate in flight.
	streamFP := qlog.NewHash()
	logOn := ix.qlog.Load().Enabled()
	if logOn && fn != nil {
		inner := fn
		fn = func(r Result) bool {
			streamFP = streamFP.Result(r.Dewey, r.Score)
			return inner(r)
		}
	}
	var trip error
	defer func() {
		ix.pinned.Add(-1)
		ferr := err
		if ferr == nil && trip != nil {
			ferr = trip
		}
		qi := qinfo{op: "topk_stream", opt: opt, bdg: bdg, visible: err}
		if logOn && err == nil {
			qi.fp, qi.hasFP = streamFP, true
		}
		ix.finishQuery(obs.EngineTopK, query, k, time.Since(start), delivered, ferr, tr, qi)
	}()
	defer guard(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return 0, meta, fmt.Errorf("xmlsearch: k must be positive")
	}
	if fn == nil {
		return 0, meta, fmt.Errorf("xmlsearch: nil callback")
	}
	keywords := kws
	if keywords == nil {
		keywords = Keywords(query)
	}
	if len(keywords) == 0 {
		return 0, meta, ErrNoKeywords
	}
	ctx, cancel := withTimeout(ctx, opt)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return 0, meta, classifyErr(err)
	}
	s := ix.view()
	q := exec.Query{Keywords: keywords, Semantics: int(opt.Semantics), K: k, Decay: effectiveDecay(opt.Decay),
		Budget: bdg, AllowPartial: opt.AllowPartial}
	e := engines.ForStream()
	delivered, meta, err = e.Stream(ctx, s, q, tr, fn)
	ssp := tr.Stage(obs.StageSettle)
	_, meta, err, trip = ix.settle(nil, meta, e.Caps, opt, err)
	tr.End(ssp)
	return delivered, meta, err
}

// SearchContext is Corpus.Search honoring a context.
func (c *Corpus) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, err := c.Index.SearchContext(ctx, query, opt)
	if err != nil {
		return nil, err
	}
	return dropSyntheticRoot(rs), nil
}

// TopKContext is Corpus.TopK honoring a context.
func (c *Corpus) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	// Fetch one extra in case the synthetic root occupies a slot.
	rs, err := c.Index.TopKContext(ctx, query, k+1, opt)
	if err != nil {
		return nil, err
	}
	rs = dropSyntheticRoot(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs, nil
}
