package xmlsearch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/topk"
)

// Context-honoring entry points. Each engine checks the context
// periodically inside its evaluation loops (every few hundred to few
// thousand inner-loop iterations — frequent enough that cancellation lands
// within microseconds on real indexes, rare enough to stay off the join's
// hot-path profile) and aborts with ctx.Err(). An already-cancelled
// context returns before any list is scanned.
//
// These entry points also form the public API's panic boundary: a panic
// out of the evaluation engines — possible only through corrupted
// in-memory state, e.g. an index mutated concurrently with a query —
// is contained and surfaced as an error wrapping ErrInternal rather than
// taking down the caller's process.
//
// Every public entry point funnels through a private *Obs variant that
// threads an optional *obs.Trace into the engines (nil — the untraced
// default — keeps the engines' instrumentation at a single pointer check
// per site) and records the query into the index's metrics registry.

// ErrInternal is wrapped by errors reporting a contained engine panic.
// Results accompanying such an error must be discarded.
var ErrInternal = errors.New("xmlsearch: internal error")

// guard converts a panic escaping an engine into an ErrInternal error.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrInternal, r)
	}
}

// searchEngine maps an Algorithm to its metrics slot for complete
// evaluations.
func searchEngine(a Algorithm) obs.Engine {
	switch a {
	case AlgoStack:
		return obs.EngineStack
	case AlgoIndexLookup:
		return obs.EngineIxLookup
	case AlgoRDIL:
		return obs.EngineRDIL
	case AlgoHybrid:
		return obs.EngineHybrid
	default:
		return obs.EngineJoin
	}
}

// topKEngine maps an Algorithm to its metrics slot for top-K evaluations;
// AlgoJoin selects the top-K star join rather than the complete join.
func topKEngine(a Algorithm) obs.Engine {
	if a == AlgoJoin {
		return obs.EngineTopK
	}
	return searchEngine(a)
}

// SearchContext is Search honoring a context: cancellation or deadline
// expiry aborts the evaluation with ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	return ix.searchObs(ctx, query, opt, nil)
}

// finishQuery is the shared tail of every query path: engine metrics and
// slow-query log, then — when a trace store is installed and the query
// was traced — the tail-sampling offer, linking the retained trace ID
// into the engine's latency histogram as an exemplar.
func (ix *Index) finishQuery(e obs.Engine, query string, k int, elapsed time.Duration, results int, err error, tr *obs.Trace) {
	ix.metrics.RecordQuery(e, query, k, elapsed, results, err, tr)
	ts := ix.traces.Load()
	if ts == nil || tr == nil {
		return
	}
	if id := ts.Add(e, query, k, elapsed, results, err, tr); id != 0 {
		if em := ix.metrics.Engine(e); em != nil {
			em.Latency.SetExemplar(elapsed, int64(id))
		}
	}
}

// searchObs wraps searchEval with the panic guard and per-query metrics
// accounting (latency histogram, result/error/cancellation counters, the
// slow-query log, and tail-sampled trace capture).
func (ix *Index) searchObs(ctx context.Context, query string, opt SearchOptions, tr *obs.Trace) (rs []Result, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	defer func() {
		ix.pinned.Add(-1)
		ix.finishQuery(searchEngine(opt.Algorithm), query, 0, time.Since(start), len(rs), err, tr)
	}()
	defer guard(&err)
	return ix.searchEval(ctx, query, opt, tr)
}

// searchEval pins the current snapshot and dispatches a complete
// evaluation to the selected engine. Every list, node lookup, and
// materialization of the query comes from the one pinned snapshot, so a
// concurrently published mutation cannot tear the evaluation.
func (ix *Index) searchEval(ctx context.Context, query string, opt SearchOptions, tr *obs.Trace) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := ix.view()
	decay := effectiveDecay(opt.Decay)
	switch opt.Algorithm {
	case AlgoJoin:
		lists := s.store.Lists(keywords, tr)
		rs, _, err := core.EvaluateCtx(ctx, lists, core.Options{Semantics: coreSem(opt.Semantics), Decay: decay, Trace: tr})
		if err != nil {
			return nil, err
		}
		core.SortByScore(rs)
		return s.materializeJoin(rs), nil
	case AlgoStack:
		rs, _, err := stack.EvaluateObsCtx(ctx, s.invListsObs(keywords, tr), stackSem(opt.Semantics), decay, tr)
		if err != nil {
			return nil, err
		}
		stack.SortByScore(rs)
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, s.materializeDewey(r.ID, r.Score))
		}
		return out, nil
	case AlgoIndexLookup:
		rs, _, err := ixlookup.EvaluateObsCtx(ctx, s.invListsObs(keywords, tr), ixlookupSem(opt.Semantics), decay, tr)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, s.materializeDewey(r.ID, r.Score))
		}
		sortResults(out)
		return out, nil
	case AlgoRDIL, AlgoHybrid:
		return nil, fmt.Errorf("xmlsearch: algorithm %d is top-K only; use TopK", opt.Algorithm)
	default:
		return nil, fmt.Errorf("xmlsearch: unknown algorithm %d", opt.Algorithm)
	}
}

// TopKContext is TopK honoring a context: cancellation or deadline expiry
// aborts the evaluation with ctx.Err() without completing the scan.
func (ix *Index) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	return ix.topKObs(ctx, query, k, opt, nil)
}

// topKObs wraps topKEval with the panic guard and per-query metrics
// accounting.
func (ix *Index) topKObs(ctx context.Context, query string, k int, opt SearchOptions, tr *obs.Trace) (rs []Result, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	defer func() {
		ix.pinned.Add(-1)
		ix.finishQuery(topKEngine(opt.Algorithm), query, k, time.Since(start), len(rs), err, tr)
	}()
	defer guard(&err)
	return ix.topKEval(ctx, query, k, opt, tr)
}

// topKEval dispatches a top-K evaluation to the selected engine.
func (ix *Index) topKEval(ctx context.Context, query string, k int, opt SearchOptions, tr *obs.Trace) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := ix.view()
	decay := effectiveDecay(opt.Decay)
	switch opt.Algorithm {
	case AlgoJoin:
		lists := s.store.TopKLists(keywords, tr)
		rs, _, err := topk.EvaluateCtx(ctx, lists, topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k, Trace: tr})
		if err != nil {
			return nil, err
		}
		return s.materializeJoin(rs), nil
	case AlgoRDIL:
		s.ensureInv()
		if tr != nil {
			s.invListsObs(keywords, tr)
		}
		rs, _, err := s.rdilIdx.TopKObsCtx(ctx, keywords, rdilSem(opt.Semantics), decay, k, tr)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, s.materializeDewey(r.ID, r.Score))
		}
		return out, nil
	case AlgoHybrid:
		colLists := s.store.Lists(keywords, tr)
		tkLists := s.store.TopKLists(keywords, tr)
		rs, _, err := topk.EvaluateHybridCtx(ctx, colLists, tkLists,
			topk.HybridOptions{Semantics: coreSem(opt.Semantics), Decay: decay, K: k, Trace: tr})
		if err != nil {
			return nil, err
		}
		return s.materializeJoin(rs), nil
	default:
		all, err := ix.searchEval(ctx, query, opt, tr)
		if err != nil {
			return nil, err
		}
		if k < len(all) {
			all = all[:k]
		}
		return all, nil
	}
}

// TopKStreamContext is TopKStream honoring a context: results already
// proven safe are delivered to fn before cancellation is observed; the
// remaining evaluation then aborts with ctx.Err().
func (ix *Index) TopKStreamContext(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) error {
	_, err := ix.topKStreamObs(ctx, query, k, opt, fn, nil)
	return err
}

// topKStreamObs runs the streaming top-K star join, guarded and metered
// like the other entry points. It returns the number of results delivered.
func (ix *Index) topKStreamObs(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool, tr *obs.Trace) (delivered int, err error) {
	start := time.Now()
	ix.pinned.Add(1)
	defer func() {
		ix.pinned.Add(-1)
		ix.finishQuery(obs.EngineTopK, query, k, time.Since(start), delivered, err, tr)
	}()
	defer guard(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		return 0, fmt.Errorf("xmlsearch: k must be positive")
	}
	if fn == nil {
		return 0, fmt.Errorf("xmlsearch: nil callback")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return 0, ErrNoKeywords
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := ix.view()
	decay := effectiveDecay(opt.Decay)
	lists := s.store.TopKLists(keywords, tr)
	_, _, err = topk.EvaluateFuncCtx(ctx, lists, topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k, Trace: tr},
		func(r core.Result) bool {
			n := s.doc.NodeByJDewey(r.Level, r.Value)
			if n == nil {
				return true
			}
			delivered++
			return fn(materializeNode(n, r.Score))
		})
	return delivered, err
}

// SearchContext is Corpus.Search honoring a context.
func (c *Corpus) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, err := c.Index.SearchContext(ctx, query, opt)
	if err != nil {
		return nil, err
	}
	return dropSyntheticRoot(rs), nil
}

// TopKContext is Corpus.TopK honoring a context.
func (c *Corpus) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	// Fetch one extra in case the synthetic root occupies a slot.
	rs, err := c.Index.TopKContext(ctx, query, k+1, opt)
	if err != nil {
		return nil, err
	}
	rs = dropSyntheticRoot(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs, nil
}
