package xmlsearch

import (
	"sort"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/topk"
)

// Thin adapters over the internal engines, kept out of the main file so the
// public surface reads top-down.

func sortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		if rs[i].Level != rs[j].Level {
			return rs[i].Level > rs[j].Level
		}
		return rs[i].Dewey < rs[j].Dewey
	})
}

func topkEvaluate(lists []*colstore.TKList, sem core.Semantics, decay float64, k int) ([]core.Result, topk.Stats) {
	return topk.Evaluate(lists, topk.Options{Semantics: sem, Decay: decay, K: k})
}

func topkEvaluateHybrid(colLists []*colstore.List, tkLists []*colstore.TKList, sem core.Semantics, decay float64, k int) ([]core.Result, bool) {
	return topk.EvaluateHybrid(colLists, tkLists, topk.HybridOptions{Semantics: sem, Decay: decay, K: k})
}

func ixlookupSem(s Semantics) ixlookup.Semantics {
	if s == SLCA {
		return ixlookup.SLCA
	}
	return ixlookup.ELCA
}
