package xmlsearch

import (
	"sort"

	"repro/internal/ixlookup"
	"repro/internal/score"
)

// Thin adapters over the internal engines, kept out of the main file so the
// public surface reads top-down.

func sortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		if rs[i].Level != rs[j].Level {
			return rs[i].Level > rs[j].Level
		}
		return rs[i].Dewey < rs[j].Dewey
	})
}

func effectiveDecay(d float64) float64 {
	if d == 0 {
		return score.DefaultDecay
	}
	return d
}

func ixlookupSem(s Semantics) ixlookup.Semantics {
	if s == SLCA {
		return ixlookup.SLCA
	}
	return ixlookup.ELCA
}
