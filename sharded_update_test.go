package xmlsearch

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestShardedMutationEdgeCases covers the routing-table boundaries: a
// shard drained of its last top-level document keeps serving and
// accepting inserts, a root-level insert grows a brand-new subtree with
// valid global Dewey numbering, and malformed targets are refused with
// the facade's error contract.
func TestShardedMutationEdgeCases(t *testing.T) {
	sh := mustSharded(t, shardedTestXML, 2)

	// Shard 1 owns global children 3 and 4. Remove both: the second
	// removal takes the shard's document count to zero.
	if err := sh.RemoveElement("1.4"); err != nil {
		t.Fatal(err)
	}
	if err := sh.RemoveElement("1.3"); err != nil {
		t.Fatalf("removing a shard's last document: %v", err)
	}
	info := sh.ShardInfo()
	if info[1].Docs != 0 {
		t.Fatalf("shard 1 docs = %d after draining, want 0", info[1].Docs)
	}

	// The empty shard participates in scatter without results or errors;
	// "omega" lived only in the removed subtrees.
	rs, err := sh.Search("omega", SearchOptions{})
	if err != nil {
		t.Fatalf("search with an empty shard: %v", err)
	}
	if len(rs) != 0 {
		t.Fatalf("removed subtree still searchable: %d results", len(rs))
	}
	if rs, err = sh.TopK("sensor", 5, SearchOptions{}); err != nil {
		t.Fatalf("top-K with an empty shard: %v", err)
	}
	if len(rs) == 0 {
		t.Fatal("surviving shard's documents vanished")
	}

	// A root-level insert grows a brand-new top-level subtree with a
	// fresh global Dewey. A boundary position joins the preceding shard,
	// so the tail insert lands in shard 0 (the empty trailing shard
	// still serves, it just is not eligible for boundary inserts).
	nd, err := sh.InsertElement("1", 2, "thesis", "zebra omega treatise")
	if err != nil {
		t.Fatalf("insert creating a new top-level subtree: %v", err)
	}
	if nd != "1.3" {
		t.Fatalf("new top-level subtree at %s, want 1.3", nd)
	}
	info = sh.ShardInfo()
	if info[0].Docs != 3 || info[1].Docs != 0 {
		t.Fatalf("docs after root insert = %d/%d, want 3/0", info[0].Docs, info[1].Docs)
	}
	rs, err = sh.Search("zebra", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Dewey != "1.3" {
		t.Fatalf("new subtree search = %+v, want one result at 1.3", rs)
	}

	// Deeper mutation inside the fresh subtree routes through the same
	// global numbering.
	if _, err := sh.InsertElement("1.3", 0, "note", "zebra appendix"); err != nil {
		t.Fatalf("mutating the fresh subtree: %v", err)
	}
	if rs, err = sh.Search("zebra", SearchOptions{Semantics: SLCA}); err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("fresh subtree not searchable after interior insert")
	}

	// Error contract parity with the unsharded facade.
	if err := sh.RemoveElement("1"); err == nil || !strings.Contains(err.Error(), "cannot remove the document root") {
		t.Fatalf("root removal: %v", err)
	}
	if err := sh.RemoveElement("1.99"); err == nil || !strings.Contains(err.Error(), "no element at") {
		t.Fatalf("out-of-range removal: %v", err)
	}
	if err := sh.RemoveElement("bogus"); err == nil || !strings.Contains(err.Error(), "bad id") {
		t.Fatalf("malformed removal: %v", err)
	}
	if _, err := sh.InsertElement("2.1", 0, "x", "y"); err == nil || !strings.Contains(err.Error(), "no element at") {
		t.Fatalf("insert under wrong root: %v", err)
	}
	if _, err := sh.InsertElement("1", 99, "x", "y"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("insert at bad position: %v", err)
	}
}

// TestShardScatterGatherHammer exercises the concurrency contract under
// the race detector: one writer per shard mutating its own subtree
// (distinct-shard writers proceed in parallel) while readers scatter
// Search, TopK, and TopKStream across all shards.
func TestShardScatterGatherHammer(t *testing.T) {
	const xml = `<corpus>
  <a><t>sensor alpha network</t></a>
  <a><t>sensor alpha ranking</t></a>
  <b><t>sensor beta keyword</t></b>
  <b><t>sensor beta xml</t></b>
  <c><t>sensor gamma search</t></c>
  <c><t>sensor gamma index</t></c>
  <d><t>sensor delta query</t></d>
  <d><t>sensor delta store</t></d>
</corpus>`
	sh := mustSharded(t, xml, 4)
	baseline, err := sh.Search("sensor", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	iters := 30
	if testing.Short() {
		iters = 8
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// One mutator per shard, each working strictly inside its own pair
	// of top-level subtrees (globals 2w+1 and 2w+2).
	for w := 0; w < sh.Shards(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := fmt.Sprintf("1.%d", 2*w+1)
			for i := 0; i < iters; i++ {
				nd, err := sh.InsertElement(parent, 0, "note", fmt.Sprintf("hammer w%d i%d", w, i))
				if err != nil {
					report(fmt.Errorf("writer %d insert: %w", w, err))
					return
				}
				if err := sh.RemoveElement(nd); err != nil {
					report(fmt.Errorf("writer %d remove %s: %w", w, nd, err))
					return
				}
			}
		}(w)
	}

	// Readers scatter across every shard while the writers churn.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := sh.Search("sensor", SearchOptions{}); err != nil {
					report(fmt.Errorf("reader %d search: %w", r, err))
					return
				}
				if _, err := sh.TopK("sensor", 3, SearchOptions{Algorithm: AlgoJoin}); err != nil {
					report(fmt.Errorf("reader %d topk: %w", r, err))
					return
				}
				err := sh.TopKStream("sensor", 2, SearchOptions{}, func(Result) bool { return true })
				if err != nil {
					report(fmt.Errorf("reader %d stream: %w", r, err))
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// All mutators net to zero: the corpus is back to its initial shape
	// and every shard still answers.
	rs, err := sh.Search("sensor", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "hammer", "sensor", baseline, rs)
}
