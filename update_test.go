package xmlsearch

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func openSmall(t *testing.T) *Index {
	t.Helper()
	idx, err := Open(strings.NewReader(
		`<bib><book><title>xml basics</title></book><book><title>databases</title></book></bib>`))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestInsertElementMakesTermsSearchable(t *testing.T) {
	idx := openSmall(t)
	if rs, _ := idx.Search("streams", SearchOptions{}); len(rs) != 0 {
		t.Fatal("term must not exist yet")
	}
	d, err := idx.InsertElement("1.1", 1, "note", "xml streams")
	if err != nil {
		t.Fatal(err)
	}
	if d == "" {
		t.Fatal("no dewey returned")
	}
	rs, err := idx.Search("xml streams", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("inserted terms not searchable")
	}
	found := false
	for _, r := range rs {
		if r.Dewey == d {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted node %s not among results %v", d, rs)
	}
	// The un-dirtied term is still intact.
	if rs, _ := idx.Search("databases", SearchOptions{}); len(rs) != 1 {
		t.Fatal("untouched term broken by insert")
	}
}

func TestRemoveElementDropsTerms(t *testing.T) {
	idx := openSmall(t)
	if err := idx.RemoveElement("1.2"); err != nil {
		t.Fatal(err)
	}
	if rs, _ := idx.Search("databases", SearchOptions{}); len(rs) != 0 {
		t.Fatal("removed subtree still searchable")
	}
	if rs, _ := idx.Search("xml", SearchOptions{}); len(rs) != 1 {
		t.Fatal("unrelated term broken by removal")
	}
	if idx.DocFreq("databases") != 0 {
		t.Fatal("stale document frequency")
	}
}

func TestUpdateErrors(t *testing.T) {
	idx := openSmall(t)
	if _, err := idx.InsertElement("9.9", 0, "x", "y"); err == nil {
		t.Error("bad parent must error")
	}
	if _, err := idx.InsertElement("not-a-dewey", 0, "x", "y"); err == nil {
		t.Error("unparsable parent must error")
	}
	if _, err := idx.InsertElement("1", 99, "x", "y"); err == nil {
		t.Error("out-of-range position must error")
	}
	if _, err := idx.InsertElement("1", 0, "", "y"); err == nil {
		t.Error("empty tag must error")
	}
	if err := idx.RemoveElement("1"); err == nil {
		t.Error("removing the root must error")
	}
	if err := idx.RemoveElement("3.1"); err == nil {
		t.Error("removing a missing node must error")
	}
}

// TestIncrementalMatchesRebuild applies a random mutation workload and
// checks after every step that (a) all engines agree on the incrementally
// maintained index, and (b) its result sets equal those of an index built
// from scratch over the mutated document.
func TestIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	idx, err := Open(strings.NewReader(
		`<lib><shelf><b>alpha xml</b><b>beta data</b></shelf><shelf><b>gamma xml data</b></shelf></lib>`))
	if err != nil {
		t.Fatal(err)
	}
	vocab := []string{"alpha", "beta", "gamma", "xml", "data", "query", "join"}
	queries := []string{"xml data", "alpha xml", "query join", "gamma", "beta data query"}

	inserted := []string{}
	for op := 0; op < 40; op++ {
		// A pinned snapshot may carry an in-memory delta segment; the
		// oracle below needs the real mutated tree, so fold a copy. The
		// live index keeps its delta — exactly what this test should cover.
		matview := func() *snapshot {
			s := idx.view()
			if s.delta != nil {
				s = idx.materializeOf(s)
			}
			return s
		}
		if rng.Intn(4) == 0 && len(inserted) > 0 {
			i := rng.Intn(len(inserted))
			if err := idx.RemoveElement(inserted[i]); err != nil {
				// The node may have vanished with an ancestor; only
				// "missing" errors are acceptable here.
				if !strings.Contains(err.Error(), "no element") {
					t.Fatal(err)
				}
			}
			inserted = append(inserted[:i], inserted[i+1:]...)
		} else {
			// Insert under a random existing element.
			all := matview().doc.Nodes
			parent := all[rng.Intn(len(all))]
			text := fmt.Sprintf("%s %s", vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
			d, err := idx.InsertElement(parent.Dewey.String(), rng.Intn(len(parent.Children)+1), "ins", text)
			if err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, d)
		}
		if op%7 == 6 {
			// Fold the accumulated delta mid-workload: compaction must be
			// invisible to every equivalence checked below.
			if err := idx.Compact(); err != nil {
				t.Fatal(err)
			}
		}

		// Rebuild from scratch over the mutated document.
		var buf bytes.Buffer
		if err := matview().doc.WriteXML(&buf); err != nil {
			t.Fatal(err)
		}
		fresh, err := Open(&buf)
		if err != nil {
			t.Fatal(err)
		}

		for _, q := range queries {
			for _, sem := range []Semantics{ELCA, SLCA} {
				inc, err := idx.Search(q, SearchOptions{Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				// (a) engines agree on the incremental index, scores included.
				for _, algo := range []Algorithm{AlgoStack, AlgoIndexLookup} {
					alt, err := idx.Search(q, SearchOptions{Semantics: sem, Algorithm: algo})
					if err != nil {
						t.Fatal(err)
					}
					if len(alt) != len(inc) {
						t.Fatalf("op %d %q sem %d algo %d: %d vs %d results", op, q, sem, algo, len(alt), len(inc))
					}
					byID := map[string]float64{}
					for _, r := range inc {
						byID[r.Dewey] = r.Score
					}
					for _, r := range alt {
						s, ok := byID[r.Dewey]
						if !ok || math.Abs(s-r.Score) > 1e-6*(1+math.Abs(s)) {
							t.Fatalf("op %d %q sem %d algo %d: %s score %v vs %v", op, q, sem, algo, r.Dewey, r.Score, s)
						}
					}
				}
				// (b) result sets match a from-scratch rebuild (scores may
				// differ slightly: the incremental index freezes N).
				ref, err := fresh.Search(q, SearchOptions{Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				if len(ref) != len(inc) {
					t.Fatalf("op %d %q sem %d: incremental %d results, rebuild %d", op, q, sem, len(inc), len(ref))
				}
				seen := map[string]bool{}
				for _, r := range inc {
					seen[r.Dewey] = true
				}
				for _, r := range ref {
					if !seen[r.Dewey] {
						t.Fatalf("op %d %q sem %d: rebuild result %s missing incrementally", op, q, sem, r.Dewey)
					}
				}
			}
			// Top-K engines stay consistent with the full evaluation.
			full, err := idx.Search(q, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			k := 3
			if len(full) < k {
				k = len(full)
			}
			if k > 0 {
				top, err := idx.TopK(q, k, SearchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range top {
					if math.Abs(top[i].Score-full[i].Score) > 1e-9 {
						t.Fatalf("op %d %q: top-K rank %d diverged", op, q, i)
					}
				}
			}
		}
	}
}

// TestMutatedIndexSaveLoadRoundTrip: an index mutated past a JDewey
// re-encode must still round-trip through Save/Load.
func TestMutatedIndexSaveLoadRoundTrip(t *testing.T) {
	idx := openSmall(t)
	// Hammer one family until the reserved gap is exhausted and a subtree
	// is renumbered.
	for i := 0; i < 12; i++ {
		if _, err := idx.InsertElement("1.1", 0, "n", fmt.Sprintf("extra%d xml", i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := idx.Search("xml", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := idx.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Search("xml", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded mutated index: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Dewey != want[i].Dewey || math.Abs(got[i].Score-want[i].Score) > 1e-6 {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// And the loaded index accepts further mutations.
	if _, err := loaded.InsertElement("1.2", 0, "n", "postload xml"); err != nil {
		t.Fatal(err)
	}
	after, err := loaded.Search("postload", SearchOptions{})
	if err != nil || len(after) == 0 {
		t.Fatalf("post-load insert unsearchable: %v %v", after, err)
	}
}

// TestMutationWithElemRank: mutations on a rank-weighted index stay
// internally consistent across engines.
func TestMutationWithElemRank(t *testing.T) {
	idx, err := Open(strings.NewReader(
		`<r><hub>x<a>m</a><b>m</b></hub><leaf>y</leaf></r>`), WithElemRank())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertElement("1", 2, "extra", "x y fresh"); err != nil {
		t.Fatal(err)
	}
	join, err := idx.Search("x y", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stackRes, err := idx.Search("x y", SearchOptions{Algorithm: AlgoStack})
	if err != nil {
		t.Fatal(err)
	}
	if len(join) != len(stackRes) {
		t.Fatalf("engines disagree after rank-weighted mutation: %d vs %d", len(join), len(stackRes))
	}
	for i := range join {
		if math.Abs(join[i].Score-stackRes[i].Score) > 1e-6*(1+math.Abs(join[i].Score)) {
			t.Fatalf("score mismatch at %d: %v vs %v", i, join[i].Score, stackRes[i].Score)
		}
	}
}
